"""Metrics registry: named counters, gauges and histograms.

One :class:`MetricsRegistry` is the single accumulation substrate the
formerly-disconnected statistics silos publish into:

* :class:`~repro.core.result.JoinStats` publishes the join funnel and
  work counters (``join.*`` / ``funnel.*``);
* :class:`~repro.gpu.profiler.KernelProfile` /
  :class:`~repro.gpu.profiler.PipelineProfile` publish per-kernel
  simulated-GPU counters (``gpu.*``);
* the serving layer's :class:`~repro.serve.stats.StatsCollector` is
  built directly on a registry (``serve.*``).

Metric names are dotted strings; the taxonomy is documented in
``docs/OBSERVABILITY.md``.  All metric types are thread-safe.
Empty-sample aggregates (mean, percentiles, max of a histogram that
never observed a value) are ``float("nan")``, never an exception.

Registries support *observers* (:meth:`MetricsRegistry.subscribe`):
every recorded value — a counter increment, a gauge set, a histogram
sample — is forwarded to each subscribed callback as
``(name, kind, value)``.  The windowed views of
:mod:`repro.obs.watch` layer rolling time-bucketed aggregates on top
of this hook without the instrumented code changing at all.
"""

from __future__ import annotations

import random
import threading

import numpy as np

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

_NAN = float("nan")

#: Reservoir capacity of a :class:`Histogram`.  Long-lived servers
#: observe unbounded sample streams; the reservoir bounds memory while
#: keeping ``count``/``total``/``mean``/``max`` exact and percentiles
#: within sampling tolerance.
DEFAULT_RESERVOIR_SIZE = 4096


class Counter:
    """A monotonically increasing integer counter."""

    kind = "counter"

    def __init__(self, name, observers=None):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0
        self._observers = observers

    def inc(self, n=1):
        n = int(n)
        with self._lock:
            self._value += n
        _notify(self._observers, self.name, self.kind, n)
        return self

    @property
    def value(self):
        return self._value

    def describe(self):
        return self._value


class Gauge:
    """A last-value-wins measurement; ``nan`` until first set."""

    kind = "gauge"

    def __init__(self, name, observers=None):
        self.name = name
        self._value = _NAN
        self._observers = observers

    def set(self, value):
        self._value = float(value)
        _notify(self._observers, self.name, self.kind, self._value)
        return self

    @property
    def value(self):
        return self._value

    def describe(self):
        return self._value


class Histogram:
    """A bounded-memory sample distribution.

    ``count``, ``total``, ``mean`` and ``max`` are exact for every
    observation ever made (running aggregates, Kahan-compensated sum).
    The raw samples behind :meth:`values` / :meth:`percentile` live in
    a fixed-size reservoir (Vitter's Algorithm R with a deterministic
    per-name seed), so a histogram on a long-lived server holds at
    most ``max_samples`` floats no matter how many observations arrive.
    Below the cap the reservoir *is* the full sample set and
    percentiles are exact — the usual case for per-run telemetry.
    """

    kind = "histogram"

    def __init__(self, name, observers=None,
                 max_samples=DEFAULT_RESERVOIR_SIZE):
        self.name = name
        self._lock = threading.Lock()
        self._values = []
        self._observers = observers
        self._max_samples = max(1, int(max_samples))
        # Deterministic reservoir: the replacement stream is a pure
        # function of the metric name and the observation sequence, so
        # two runs that observe the same values in the same order keep
        # byte-identical reservoirs.
        self._rng = random.Random(name)
        self._count = 0
        self._total = 0.0
        self._compensation = 0.0   # Kahan carry for the exact total
        self._max = _NAN

    def observe(self, value):
        value = float(value)
        with self._lock:
            self._count += 1
            y = value - self._compensation
            t = self._total + y
            self._compensation = (t - self._total) - y
            self._total = t
            if not (value <= self._max):      # nan-safe running max
                self._max = value
            if len(self._values) < self._max_samples:
                self._values.append(value)
            else:
                slot = self._rng.randrange(self._count)
                if slot < self._max_samples:
                    self._values[slot] = value
        _notify(self._observers, self.name, self.kind, value)
        return self

    @property
    def count(self):
        """Exact observation count (not the reservoir size)."""
        return self._count

    @property
    def total(self):
        """Exact (compensated) sum of every observation."""
        return self._total

    @property
    def reservoir_size(self):
        """Samples currently retained (= ``count`` until the cap)."""
        return len(self._values)

    def values(self):
        """Snapshot of the retained samples.

        Observation order (and the complete sample set) up to
        ``max_samples`` observations; a uniform reservoir beyond.
        """
        with self._lock:
            return tuple(self._values)

    @property
    def mean(self):
        return self._total / self._count if self._count else _NAN

    @property
    def max(self):
        return self._max if self._count else _NAN

    def percentile(self, q):
        """Percentile of the retained samples (``q`` in [0, 100]).

        Exact below the reservoir cap; a uniform-sample estimate
        beyond it.  ``nan`` for the empty histogram — empty-sample
        aggregates never raise.
        """
        values = self.values()
        if not values:
            return _NAN
        return float(np.percentile(np.asarray(values), q))

    def describe(self):
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self.max,
        }


def _notify(observers, name, kind, value):
    if not observers:
        return
    for callback in tuple(observers):
        callback(name, kind, value)


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    ``counter``/``gauge``/``histogram`` return the existing metric when
    the name is already registered (so independent publishers
    accumulate into one instrument) and raise when the name is bound to
    a different metric type.
    """

    _TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics = {}
        # Shared with every metric this registry creates; appending a
        # callback makes it visible to existing instruments too.
        self._observers = []

    def subscribe(self, callback):
        """Forward every recorded value to ``callback(name, kind, value)``.

        Covers metrics created before and after the subscription.
        Callbacks run on the recording thread, outside the metric's
        lock; keep them cheap (the windowed views of
        :mod:`repro.obs.watch` only bucket-accumulate).
        """
        self._observers.append(callback)
        return callback

    def _get_or_create(self, kind, name):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._TYPES[kind](name, observers=self._observers)
                self._metrics[name] = metric
            elif metric.kind != kind:
                raise ValueError(
                    "metric %r is a %s, not a %s"
                    % (name, metric.kind, kind))
            return metric

    def counter(self, name):
        return self._get_or_create("counter", name)

    def gauge(self, name):
        return self._get_or_create("gauge", name)

    def histogram(self, name):
        return self._get_or_create("histogram", name)

    def get(self, name):
        """The registered metric, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def value(self, name, default=0):
        """A counter/gauge value by name (``default`` when absent)."""
        metric = self.get(name)
        return default if metric is None else metric.value

    def names(self):
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self):
        """Flat ``{name: described value}`` dict of every metric."""
        with self._lock:
            metrics = list(self._metrics.values())
        return {metric.name: metric.describe() for metric in metrics}
