"""``repro.obs.baseline`` — benchmark trajectory store and regression gate.

``benchmarks/results/BENCH_*.json`` payloads were write-only snapshots:
each bench run overwrote the last, so a perf claim made in one PR was
unverifiable two PRs later.  This module gives them a memory and teeth:

* :func:`iter_metrics` walks any bench payload and yields its gateable
  numeric metrics as ``(config, metric, value, direction)`` rows, with
  a stable human-readable ``config`` path (list elements are labelled
  by their identity keys — ``runs[dataset=kegg,method=ti-cpu,k=20,``
  ``workers=2]`` — so the same logical configuration maps to the same
  key across runs even when ordering changes).
* The **trajectory file** (``benchmarks/results/TRAJECTORY.jsonl``) is
  an append-only JSONL log of those rows keyed by
  ``(bench, fingerprint, metric, commit)``; committed to the repo, it
  is the recorded-performance substrate the ROADMAP's cost-model
  scheduler trains on.
* :func:`gate` compares a fresh payload against the **median of the
  stored history** per key with noise-tolerant thresholds: a value is
  a regression only when it is worse than the median by more than
  ``rel_tol`` (relative) *and* by more than ``abs_floor`` (absolute),
  in the metric's bad direction.  ``python -m repro bench-gate`` exits
  nonzero on any regression — CI teeth for every past and future perf
  number.

Only metrics with a known improvement direction participate; shape
descriptors (n, dim, k, counters that define the workload) are carried
in the config path instead of being gated.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["iter_metrics", "load_trajectory", "append_trajectory",
           "ingest_payload", "gate", "GateReport", "current_commit",
           "TRAJECTORY_NAME", "LOWER_BETTER", "HIGHER_BETTER"]

TRAJECTORY_NAME = "TRAJECTORY.jsonl"

#: Metrics where smaller is better (times, distance-computation work).
LOWER_BETTER = frozenset({
    "sim_time_s", "wall_time_s", "prepare_time_s", "query_time_s",
    "build_s", "mmap_load_s", "eager_load_s", "cold_first_answer_s",
    "warm_first_answer_s", "fresh_hash_s", "memo_lookup_s",
    "graph_build_s", "index_build_s", "exact_query_time_s",
    "ti_level2_distances", "graph_build_distances",
    "distances_per_query", "p99_latency_s", "p50_latency_s",
})

#: Metrics where larger is better (speedups, recall, pruning power).
HIGHER_BETTER = frozenset({
    "speedup", "query_speedup", "wall_speedup", "load_speedup",
    "saved_fraction", "exact_saved_fraction", "recall",
    "warp_efficiency", "qps",
})

#: Keys that identify a list element's configuration (used to label
#: list entries stably instead of by positional index).
_IDENTITY_KEYS = ("dataset", "shape", "method", "k", "ef", "workers",
                  "pool", "n", "dim", "eps", "recall_target")

#: Dict keys whose subtrees are workload *outputs* with no direction
#: (funnel counters legitimately change when the workload changes).
_SKIP_SUBTREES = frozenset({"funnel", "decisions", "plan", "stages",
                            "calibration"})


def _direction(metric):
    if metric in LOWER_BETTER:
        return "lower"
    if metric in HIGHER_BETTER:
        return "higher"
    return None


def _label(item):
    parts = ["%s=%s" % (key, item[key]) for key in _IDENTITY_KEYS
             if key in item and not isinstance(item[key], (dict, list))]
    return ",".join(parts)


def iter_metrics(bench, payload, prefix=""):
    """Yield ``(config, metric, value, direction)`` for a bench payload.

    ``config`` is the dotted/bracketed path from the payload root to
    the dict holding the metric (``""`` at the root); ``metric`` is the
    leaf key; only finite numeric values of known direction are
    yielded.
    """
    if isinstance(payload, dict):
        for key, value in sorted(payload.items()):
            if isinstance(value, dict):
                if key in _SKIP_SUBTREES:
                    continue
                sub = "%s.%s" % (prefix, key) if prefix else key
                yield from iter_metrics(bench, value, sub)
            elif isinstance(value, list):
                if key in _SKIP_SUBTREES:
                    continue
                base = "%s.%s" % (prefix, key) if prefix else key
                for i, item in enumerate(value):
                    if not isinstance(item, dict):
                        continue
                    label = _label(item) or str(i)
                    yield from iter_metrics(
                        bench, item, "%s[%s]" % (base, label))
            else:
                direction = _direction(key)
                if direction is None or isinstance(value, bool):
                    continue
                if not isinstance(value, (int, float)):
                    continue
                value = float(value)
                if not math.isfinite(value):
                    continue
                yield prefix, key, value, direction


def fingerprint(bench, config):
    """Stable 12-hex id of one (bench, config path) pair."""
    digest = hashlib.sha1(("%s:%s" % (bench, config)).encode())
    return digest.hexdigest()[:12]


def current_commit():
    """Short git commit id (``REPRO_COMMIT`` env overrides; never raises)."""
    override = os.environ.get("REPRO_COMMIT")
    if override:
        return override
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)))
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def bench_name(path):
    """``BENCH_parallel_scaling.json`` -> ``parallel_scaling``."""
    stem = Path(path).stem
    return stem[len("BENCH_"):] if stem.startswith("BENCH_") else stem


def ingest_payload(bench, payload, commit=None, recorded=None):
    """Flatten one bench payload into trajectory records."""
    commit = commit if commit is not None else current_commit()
    recorded = recorded if recorded is not None else round(time.time(), 3)
    records = []
    for config, metric, value, direction in iter_metrics(bench, payload):
        records.append({
            "bench": bench,
            "config": config,
            "fingerprint": fingerprint(bench, config),
            "metric": metric,
            "value": value,
            "direction": direction,
            "commit": commit,
            "recorded": recorded,
        })
    return records


def load_trajectory(path):
    """Read a trajectory JSONL file (missing file -> empty list)."""
    path = Path(path)
    if not path.exists():
        return []
    records = []
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def append_trajectory(path, records):
    """Append records, skipping (bench, fingerprint, metric, commit)
    duplicates already stored — re-ingesting the same run is a no-op.
    Returns the records actually written."""
    path = Path(path)
    existing = {(r["bench"], r["fingerprint"], r["metric"], r["commit"])
                for r in load_trajectory(path)}
    fresh = []
    for record in records:
        key = (record["bench"], record["fingerprint"], record["metric"],
               record["commit"])
        if key in existing:
            continue
        existing.add(key)
        fresh.append(record)
    if fresh:
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a", encoding="utf-8") as handle:
            for record in fresh:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
    return fresh


def _median(values):
    values = sorted(values)
    mid = len(values) // 2
    if len(values) % 2:
        return values[mid]
    return 0.5 * (values[mid - 1] + values[mid])


@dataclass
class GateReport:
    """Outcome of gating candidate payloads against the trajectory."""

    entries: list = field(default_factory=list)

    @property
    def regressions(self):
        return [entry for entry in self.entries
                if entry["status"] == "regression"]

    @property
    def ok(self):
        return not self.regressions

    def counts(self):
        counts = {}
        for entry in self.entries:
            counts[entry["status"]] = counts.get(entry["status"], 0) + 1
        return counts

    def table(self, title="bench-gate", all_rows=False):
        from ..bench.reporting import format_table

        rows = []
        for entry in sorted(self.entries,
                            key=lambda e: (e["status"] != "regression",
                                           e["bench"], e["config"],
                                           e["metric"])):
            if not all_rows and entry["status"] in ("ok", "new"):
                continue
            baseline = entry["baseline"]
            rows.append([
                entry["bench"],
                (entry["config"][:44] or "-"),
                entry["metric"],
                "-" if baseline is None else "%.6g" % baseline,
                "%.6g" % entry["value"],
                "-" if not entry.get("ratio") else "%.2fx" % entry["ratio"],
                entry["status"],
            ])
        counts = self.counts()
        notes = ["%d metrics gated: %s" % (
            len(self.entries),
            ", ".join("%s=%d" % kv for kv in sorted(counts.items())))]
        if not rows:
            rows = [["-", "-", "-", "-", "-", "-", "all ok"]]
        return format_table(
            title,
            ["bench", "config", "metric", "baseline", "value", "ratio",
             "status"],
            rows, notes=notes)


def gate(candidates, history, rel_tol=0.5, abs_floor=0.05):
    """Gate candidate records against trajectory history.

    Parameters
    ----------
    candidates:
        Records from :func:`ingest_payload` for the fresh run(s).
    history:
        Records from :func:`load_trajectory`.
    rel_tol:
        Allowed relative drift from the history median before a value
        counts as worse (0.5 = up to 50% worse tolerated; a 2x
        ``query_time_s`` slowdown always trips).
    abs_floor:
        Minimum absolute delta for a regression — sub-floor jitter on
        near-zero timings never gates.

    A candidate regresses only when it is worse than the median in the
    metric's bad direction by *both* margins.  Metrics with no stored
    history pass as ``"new"``.
    """
    by_key = {}
    for record in history:
        key = (record["bench"], record["fingerprint"], record["metric"])
        by_key.setdefault(key, []).append(float(record["value"]))

    report = GateReport()
    for record in candidates:
        key = (record["bench"], record["fingerprint"], record["metric"])
        value = float(record["value"])
        entry = {"bench": record["bench"], "config": record["config"],
                 "metric": record["metric"], "value": value,
                 "baseline": None, "ratio": None, "status": "new"}
        past = by_key.get(key)
        if past:
            baseline = _median(past)
            entry["baseline"] = baseline
            if record["direction"] == "lower":
                worse_by = value - baseline
                entry["ratio"] = value / baseline if baseline else None
                breached = (baseline >= 0
                            and worse_by > rel_tol * abs(baseline)
                            and worse_by > abs_floor)
            else:
                worse_by = baseline - value
                entry["ratio"] = value / baseline if baseline else None
                breached = (worse_by > rel_tol * abs(baseline)
                            and worse_by > abs_floor)
            entry["status"] = "regression" if breached else "ok"
        report.entries.append(entry)
    return report
