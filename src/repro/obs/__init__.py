"""``repro.obs`` — the unified telemetry spine.

One request, one trace: the planner, the execution engine, the
simulated GPU and the serving layer all report through this package
instead of keeping private statistics silos.

* :mod:`repro.obs.tracer` — nested, thread-aware spans with a
  zero-overhead no-op default; instrumented code calls
  :func:`obs.span` / :func:`obs.event` / :func:`obs.annotate` and pays
  nothing unless a tracer is activated with :func:`use_tracer` (or the
  ``KNNServer(tracer=...)`` hook).
* :mod:`repro.obs.metrics` — the :class:`MetricsRegistry` of named
  counters/gauges/histograms that :class:`~repro.core.result.JoinStats`,
  :class:`~repro.gpu.profiler.KernelProfile` and the serving
  :class:`~repro.serve.stats.StatsCollector` publish into.
* :mod:`repro.obs.export` — JSONL event logs and Chrome trace-event
  JSON (open ``trace.json`` in Perfetto or ``chrome://tracing``).
* :mod:`repro.obs.funnel` — the filtering funnel (candidates →
  level-1 survivors → level-2 survivors → exact distances) and its
  monotonicity check.
* :mod:`repro.obs.watch` — rolling windowed metric views over a
  registry plus declarative SLO monitors (``SloSpec``/``SloMonitor``)
  the serving layer evaluates continuously.
* :mod:`repro.obs.baseline` — the append-only benchmark trajectory
  store and the ``bench-gate`` regression gate over it.
* :mod:`repro.obs.audit` — the per-query ``QueryAudit`` record behind
  ``explain=True``.

CLI: ``python -m repro trace <command> ...`` runs any subcommand under
a recording tracer and writes ``trace.json`` plus the funnel table.
See ``docs/OBSERVABILITY.md`` for the span and metric taxonomy.
"""

from __future__ import annotations

from importlib import import_module

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import (NULL_SPAN, Span, Tracer, annotate, count,
                     current_tracer, event, span, use_tracer)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "NULL_SPAN", "Span", "Tracer",
    "annotate", "count", "current_tracer", "event", "span", "use_tracer",
    "tracer_records", "write_jsonl",
    "to_chrome_trace", "write_chrome_trace",
    "FUNNEL_STAGES", "funnel_from_stats", "funnel_counts", "funnel_table",
    "check_funnel",
    "RollingWindow", "MetricWindows", "SloSpec", "SloStatus", "SloMonitor",
    "evaluate_slos", "QueryAudit",
]

# Exporters and the funnel load lazily: they reach into bench/table
# formatting, which must not be imported just because an engine module
# imported ``repro.obs`` for its no-op span helpers.
_LAZY = {
    "tracer_records": ".export",
    "write_jsonl": ".export",
    "to_chrome_trace": ".export",
    "write_chrome_trace": ".export",
    "FUNNEL_STAGES": ".funnel",
    "funnel_from_stats": ".funnel",
    "funnel_counts": ".funnel",
    "funnel_table": ".funnel",
    "check_funnel": ".funnel",
    "RollingWindow": ".watch",
    "MetricWindows": ".watch",
    "SloSpec": ".watch",
    "SloStatus": ".watch",
    "SloMonitor": ".watch",
    "evaluate_slos": ".watch",
    "QueryAudit": ".audit",
}


def __getattr__(name):
    if name in _LAZY:
        value = getattr(import_module(_LAZY[name], __name__), name)
        globals()[name] = value
        return value
    raise AttributeError("module %r has no attribute %r" % (__name__, name))


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
