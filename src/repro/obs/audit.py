"""``repro.obs.audit`` — the per-query explain/audit record.

A surprising answer (wrong route, weak pruning, a slow shard) must be
explainable *after the fact*.  ``explain=True`` on
:func:`repro.knn_join` / :meth:`repro.serve.KNNServer.submit` makes the
execution layer assemble a :class:`QueryAudit` — engine and plan knobs,
shard fan-out, per-stage funnel counts, route/``ef``/recall estimate,
per-span timings — and attach it to the result/response.  The record is
plain data: :meth:`QueryAudit.to_dict` rows feed directly into
:func:`repro.obs.write_jsonl`, and ``python -m repro explain`` renders
:meth:`QueryAudit.table` for a single ad-hoc query.

The funnel counts in an audit are the *same counters* the join
published (idempotently) into the metrics registry — bit-identical to a
direct ``knn_join`` of the same query, which is the property the
acceptance tests pin down.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

__all__ = ["QueryAudit", "span_timings"]


def span_timings(spans):
    """Aggregate finished spans into ``{name: {count, total_s}}``."""
    timings = {}
    for span in spans:
        entry = timings.setdefault(span.name, {"count": 0, "total_s": 0.0})
        entry["count"] += 1
        entry["total_s"] += span.duration_s or 0.0
    for entry in timings.values():
        entry["total_s"] = round(entry["total_s"], 6)
    return timings


@dataclass(frozen=True)
class QueryAudit:
    """Structured explanation of how one query (batch) was answered.

    Attributes
    ----------
    method:
        Engine that executed the join (``ti-cpu``, ``graph-bfs``, ...).
    k, n_queries, n_targets, dim:
        Workload shape.
    route:
        Serving path: ``"exact"`` or ``"approx"`` (always ``"exact"``
        for direct library calls).
    recall_target, ef, recall_estimate:
        Approximate-route knobs: the requested recall floor, the
        calibrated beam width chosen for it, and the measured-recall
        estimate of that beam width from the graph's calibration curve.
    degraded, cache_hit:
        Serving flags — answered by the degraded engine under queue
        pressure / plan served from the prepared-index cache.
    request_id, batch_requests, batch_rows, latency_s, queue_wait_s:
        Per-request serving context (``None`` for direct calls).
    plan:
        The planner's knob dict (batching, landmark counts, device).
    options:
        Caller options forwarded to the engine.
    counters:
        ``JoinStats.summary()`` work counters.
    funnel:
        Per-stage funnel counts (see :mod:`repro.obs.funnel`) —
        bit-identical to the registry counters the join published.
    shards:
        Per-shard fan-out detail (shard id, query range, worker, wall
        time, per-shard funnel) when the join ran sharded.
    timings:
        Per-span wall-clock aggregate ``{span: {count, total_s}}``.
    decision:
        The scheduler's :meth:`repro.sched.Decision.to_dict` record for
        this run — chosen engine, predicted cost, rejected alternatives
        and the post-run predicted-vs-actual error.
    """

    method: str = ""
    k: int = 0
    n_queries: int = 0
    n_targets: int = 0
    dim: int = 0
    route: str = "exact"
    recall_target: float = None
    ef: int = None
    recall_estimate: float = None
    degraded: bool = False
    cache_hit: bool = None
    request_id: str = None
    batch_requests: int = None
    batch_rows: int = None
    latency_s: float = None
    queue_wait_s: float = None
    plan: dict = field(default_factory=dict)
    options: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    funnel: dict = field(default_factory=dict)
    shards: tuple = ()
    timings: dict = field(default_factory=dict)
    decision: dict = None

    def replace(self, **changes):
        """A copy with fields updated (serving layer re-contextualises
        the batch-level audit per request)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self):
        """JSON-ready dict (feed rows to :func:`repro.obs.write_jsonl`)."""
        record = dataclasses.asdict(self)
        record["shards"] = [dict(shard) for shard in self.shards]
        record["type"] = "query_audit"
        return record

    def table(self, title="query audit"):
        """Render the audit as a bench-style plain-text table."""
        from ..bench.reporting import format_table

        rows = [
            ["method", self.method],
            ["shape |Q|x|T| (d)", "%dx%d (%d)"
             % (self.n_queries, self.n_targets, self.dim)],
            ["k", self.k],
            ["route", self.route],
        ]
        if self.recall_target is not None:
            rows.append(["recall target", self.recall_target])
        if self.ef is not None:
            rows.append(["ef (beam width)", self.ef])
        if self.recall_estimate is not None:
            rows.append(["recall estimate", round(self.recall_estimate, 4)])
        if self.request_id is not None:
            rows.append(["request id", self.request_id])
        if self.latency_s is not None:
            rows.append(["latency ms", round(self.latency_s * 1e3, 3)])
        if self.batch_requests is not None:
            rows.append(["batch (requests/rows)", "%s/%s"
                         % (self.batch_requests, self.batch_rows)])
        if self.cache_hit is not None:
            rows.append(["plan cache hit", self.cache_hit])
        rows.append(["degraded", self.degraded])
        if self.decision:
            for key in ("source", "engine", "predicted_s", "actual_s",
                        "error_ratio", "model_version", "reason"):
                if self.decision.get(key) is not None:
                    rows.append(["decision." + key, self.decision[key]])
            for name, cost in self.decision.get("alternatives", [])[:4]:
                rows.append(["decision.rejected." + str(name),
                             "%.6gs predicted" % cost])
        for key, value in self.plan.items():
            rows.append(["plan." + str(key), value])
        for stage, value in self.funnel.items():
            rows.append(["funnel." + stage, value])
        for key, value in self.counters.items():
            if key in ("|Q|", "|T|", "k", "d"):
                continue
            rows.append(["counter." + str(key), value])
        for name, entry in sorted(self.timings.items()):
            rows.append(["span." + name, "%dx %.3f ms"
                         % (entry["count"], entry["total_s"] * 1e3)])
        for shard in self.shards:
            rows.append(["shard %s [%s:%s)" % (
                shard.get("shard"), shard.get("start"), shard.get("stop")),
                "worker=%s wall=%.3fms level2=%s" % (
                    shard.get("worker"),
                    (shard.get("wall_s") or 0.0) * 1e3,
                    shard.get("funnel", {}).get("level2_survivors"))])
        return format_table(title, ["field", "value"], rows)
