"""Trace exporters: JSONL event logs and Chrome trace-event JSON.

Two machine-readable views of one :class:`~repro.obs.tracer.Tracer`:

* :func:`write_jsonl` / :func:`tracer_records` — one JSON object per
  line (spans, instant events, metric snapshot), the greppable log;
* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format (JSON object with a ``traceEvents`` array of
  ``ph``/``ts``/``pid``/``tid`` events) loadable in Perfetto or
  ``chrome://tracing``.  Host-side spans appear as complete (``"X"``)
  events under one process with one track per thread; each simulated
  GPU run attached as a ``"pipeline_profile"`` artifact becomes its
  own process with one track per kernel stream and one track per
  simulated SM, warps laid out in simulated time.

Timestamps are microseconds (the unit the trace-event spec requires),
re-based so the earliest span starts at 0.
"""

from __future__ import annotations

import json

__all__ = ["tracer_records", "write_jsonl", "span_trace_events",
           "profile_trace_events", "to_chrome_trace", "write_chrome_trace"]

#: pid of the host process in the exported trace; simulated GPU
#: pipelines are numbered upwards from _SIM_PID.
_HOST_PID = 1
_SIM_PID = 2

#: Default number of simulated-SM tracks warps are laid out across.
DEFAULT_SM_TRACKS = 8


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def tracer_records(tracer):
    """Every span and instant event of a tracer as JSON-ready dicts."""
    records = [span.to_dict() for span in tracer.finished_spans()]
    records.extend({"type": "instant", **instant}
                   for instant in tracer.instants())
    records.append({"type": "metrics", "metrics": tracer.registry.snapshot()})
    return records


def write_jsonl(path, records):
    """Write an iterable of dicts as one JSON object per line."""
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, default=str) + "\n")
    return path


# ----------------------------------------------------------------------
# Chrome trace events
# ----------------------------------------------------------------------
def _us(seconds):
    return round(seconds * 1e6, 3)


def span_trace_events(tracer, pid=_HOST_PID):
    """Complete (``"X"``) events plus thread metadata for host spans."""
    spans = [span for span in tracer.finished_spans()
             if span.start_s is not None and span.end_s is not None]
    instants = tracer.instants()
    if not spans and not instants:
        return []
    t0 = min([span.start_s for span in spans]
             + [instant["ts_s"] for instant in instants])

    events = [{
        "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
        "args": {"name": "repro host"},
    }]
    threads = {}
    for span in spans:
        threads.setdefault(span.thread_id, span.thread_name)
    for instant in instants:
        threads.setdefault(instant["thread_id"], instant["thread_name"])
    tids = {thread_id: index
            for index, thread_id in enumerate(sorted(threads, key=str))}
    for thread_id, tid in tids.items():
        events.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "args": {"name": "%s (%s)" % (threads[thread_id], thread_id)},
        })

    for span in spans:
        args = {"span_id": span.span_id, "parent_id": span.parent_id,
                "trace_id": span.trace_id}
        args.update(span.attributes)
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.name.split(".")[0].split(":")[0],
            "ts": _us(span.start_s - t0),
            "dur": _us(span.end_s - span.start_s),
            "pid": pid,
            "tid": tids[span.thread_id],
            "args": args,
        })
        for span_event in span.events:
            events.append({
                "ph": "i", "s": "t",
                "name": span_event["name"],
                "ts": _us(span_event["ts_s"] - t0),
                "pid": pid,
                "tid": tids[span.thread_id],
                "args": {key: value for key, value in span_event.items()
                         if key not in ("name", "ts_s")},
            })
    for instant in instants:
        events.append({
            "ph": "i", "s": "t",
            "name": instant["name"],
            "ts": _us(instant["ts_s"] - t0),
            "pid": pid,
            "tid": tids[instant["thread_id"]],
            "args": {key: value for key, value in instant.items()
                     if key not in ("name", "ts_s", "thread_id",
                                    "thread_name")},
        })
    return events


def profile_trace_events(profile, pid=_SIM_PID, sm_tracks=DEFAULT_SM_TRACKS):
    """Simulated-timeline tracks for one ``PipelineProfile``.

    Track 0 is the kernel stream: launches laid end to end in simulated
    time, exactly how ``sim_time_s`` composes.  Tracks 1..N are
    simulated SMs: each kernel's per-warp cycle counts (scaled to the
    kernel's simulated duration) are placed round-robin, so warp-load
    imbalance — the paper's warp-efficiency story — is visible as
    ragged track ends in Perfetto.
    """
    events = [{
        "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
        "args": {"name": "simulated GPU: %s" % profile.name},
    }, {
        "ph": "M", "name": "thread_name", "pid": pid, "tid": 0,
        "args": {"name": "kernel stream"},
    }]
    for sm in range(sm_tracks):
        events.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": sm + 1,
            "args": {"name": "sim SM %d" % sm},
        })

    cursor_s = 0.0
    for kernel in profile.kernels:
        duration_s = kernel.sim_time_s
        events.append({
            "ph": "X",
            "name": kernel.name,
            "cat": "sim-kernel",
            "ts": _us(cursor_s),
            "dur": _us(duration_s),
            "pid": pid,
            "tid": 0,
            "args": {
                "warps": kernel.n_warps,
                "warp_efficiency": round(kernel.warp_efficiency, 4),
                "gl_transactions": kernel.gl_transactions,
                "divergent_branches": kernel.divergent_branches,
                "flops": kernel.flops,
            },
        })
        total_cycles = sum(kernel.warp_cycles)
        if total_cycles > 0 and duration_s > 0:
            # Scale warp cycles so each SM track fits the kernel window.
            per_sm_cycles = [0.0] * sm_tracks
            for warp_index, cycles in enumerate(kernel.warp_cycles):
                per_sm_cycles[warp_index % sm_tracks] += cycles
            busiest = max(per_sm_cycles)
            scale = duration_s / busiest if busiest > 0 else 0.0
            offsets = [0.0] * sm_tracks
            for warp_index, cycles in enumerate(kernel.warp_cycles):
                sm = warp_index % sm_tracks
                warp_s = cycles * scale
                events.append({
                    "ph": "X",
                    "name": "%s/warp%d" % (kernel.name, warp_index),
                    "cat": "sim-warp",
                    "ts": _us(cursor_s + offsets[sm]),
                    "dur": _us(warp_s),
                    "pid": pid,
                    "tid": sm + 1,
                    "args": {"cycles": round(cycles, 1)},
                })
                offsets[sm] += warp_s
        cursor_s += duration_s
    return events


def to_chrome_trace(tracer, sm_tracks=DEFAULT_SM_TRACKS):
    """The full Chrome trace-event document for one tracer.

    Host spans under one process, plus one simulated-GPU process per
    attached ``"pipeline_profile"`` artifact.
    """
    events = span_trace_events(tracer, pid=_HOST_PID)
    for index, profile in enumerate(tracer.artifacts("pipeline_profile")):
        events.extend(profile_trace_events(
            profile, pid=_SIM_PID + index, sm_tracks=sm_tracks))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, tracer, sm_tracks=DEFAULT_SM_TRACKS):
    """Write :func:`to_chrome_trace` output as JSON; returns the path."""
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(tracer, sm_tracks=sm_tracks), handle)
    return path
