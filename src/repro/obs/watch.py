"""``repro.obs.watch`` — windowed metric views and live SLO monitors.

PR 3's telemetry spine records; this module *watches*.  Three pieces:

* :class:`RollingWindow` — a fixed number of time buckets over one
  metric, giving recent-traffic aggregates (count, rate, percentiles)
  instead of the lifetime totals a :class:`~repro.obs.metrics.Histogram`
  accumulates.  Deterministic given an injected clock and a fixed
  event sequence, so windowed behaviour is unit-testable.
* :class:`MetricWindows` — subscribes to a
  :class:`~repro.obs.metrics.MetricsRegistry` (the observer hook) and
  maintains one rolling window per watched metric.  Instrumented code
  does not change: everything that publishes into the registry is
  windowed for free.
* :class:`SloSpec` / :class:`SloMonitor` — a declarative service-level
  objective set evaluated against the windows (live) or against a
  metrics snapshot (post-hoc, e.g. ``python -m repro obs report`` on a
  JSONL event log).  Breaches are counted back into the registry
  (``slo.breaches``, ``slo.breach.<name>``) so the feedback loop is
  itself observable.

Known SLOs (``name`` of an :class:`SloSpec`; see docs/OBSERVABILITY.md):

=========================  =============================================
``p99_latency_s``          p99 request latency (s), both routes
``p99_latency_exact_s``    p99 latency of the exact route
``p99_latency_approx_s``   p99 latency of the approximate graph route
``p50_latency_s``          median request latency (s)
``rejection_rate``         admission-control rejections / submissions
``error_rate``             request errors / submissions
``min_recall``             floor on the mean calibrated recall
                           estimate of approx-routed answers
``funnel_efficiency``      floor on 1 - level2_survivors/candidates
                           (the paper's "saved computations")
``max_version_lag``        ceiling on the served graph's version lag
=========================  =============================================

Upper-bound SLOs (latency, rates, lag) breach when the measured value
exceeds the bound; floor SLOs (``min_recall``, ``funnel_efficiency``)
breach when it falls below.  An SLO whose signal has no samples yet
(e.g. ``min_recall`` before any approximate traffic) holds vacuously.
"""

from __future__ import annotations

import math
import random
import threading
import time
from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError

__all__ = ["RollingWindow", "MetricWindows", "SloSpec", "SloStatus",
           "SloMonitor", "evaluate_slos", "SnapshotReader", "KNOWN_SLOS"]

_NAN = float("nan")

#: Default window geometry: 60 s of history in 12 five-second buckets.
DEFAULT_WINDOW_S = 60.0
DEFAULT_BUCKETS = 12

#: Per-bucket sample cap (reservoir) — bounds window memory the same
#: way the histogram reservoir bounds lifetime memory.
BUCKET_SAMPLE_CAP = 512


class _Bucket:
    __slots__ = ("epoch", "count", "total", "samples", "seen")

    def __init__(self, epoch):
        self.epoch = epoch
        self.count = 0
        self.total = 0.0
        self.samples = []
        self.seen = 0          # sample observations offered (for the
        #                        reservoir; counter increments skip it)


class RollingWindow:
    """Time-bucketed rolling aggregates over one metric.

    ``window_s`` of history in ``n_buckets`` equal buckets; buckets
    older than the window are evicted on the next touch, so memory is
    bounded by ``n_buckets * BUCKET_SAMPLE_CAP`` samples.  Counter
    increments contribute to ``count``/``total``/``rate`` only;
    histogram observations additionally land in the per-bucket sample
    reservoir behind :meth:`percentile`.

    Deterministic: with an injected ``clock`` and a fixed observation
    sequence, every aggregate is a pure function of the inputs (the
    per-bucket reservoir stream is seeded from the bucket epoch).
    """

    def __init__(self, window_s=DEFAULT_WINDOW_S, n_buckets=DEFAULT_BUCKETS,
                 clock=time.monotonic, sample_cap=BUCKET_SAMPLE_CAP):
        if window_s <= 0 or n_buckets <= 0:
            raise ValidationError("window_s and n_buckets must be positive")
        self.window_s = float(window_s)
        self.n_buckets = int(n_buckets)
        self.bucket_s = self.window_s / self.n_buckets
        self._clock = clock
        self._sample_cap = max(1, int(sample_cap))
        self._lock = threading.Lock()
        self._buckets = {}     # epoch -> _Bucket

    # -- recording -----------------------------------------------------
    def record(self, value, n=1, sample=True, now=None):
        """Add an observation (``sample=True``) or a count increment."""
        now = self._clock() if now is None else now
        epoch = int(now // self.bucket_s)
        with self._lock:
            bucket = self._buckets.get(epoch)
            if bucket is None:
                bucket = self._buckets[epoch] = _Bucket(epoch)
                self._evict_locked(epoch)
            bucket.count += n
            bucket.total += value * n
            if sample:
                bucket.seen += 1
                if len(bucket.samples) < self._sample_cap:
                    bucket.samples.append(value)
                else:
                    slot = random.Random(
                        bucket.epoch * 1000003
                        + bucket.seen).randrange(bucket.seen)
                    if slot < self._sample_cap:
                        bucket.samples[slot] = value
        return self

    def _evict_locked(self, newest_epoch):
        horizon = newest_epoch - self.n_buckets
        for epoch in [e for e in self._buckets if e <= horizon]:
            del self._buckets[epoch]

    def _live(self, now=None):
        now = self._clock() if now is None else now
        horizon = int(now // self.bucket_s) - self.n_buckets
        with self._lock:
            return [bucket for epoch, bucket in sorted(self._buckets.items())
                    if epoch > horizon]

    # -- aggregates ----------------------------------------------------
    def count(self, now=None):
        return sum(bucket.count for bucket in self._live(now))

    def total(self, now=None):
        return sum(bucket.total for bucket in self._live(now))

    def rate(self, now=None):
        """Events per second over the window."""
        return self.count(now) / self.window_s

    def mean(self, now=None):
        buckets = self._live(now)
        count = sum(bucket.count for bucket in buckets)
        if not count:
            return _NAN
        return sum(bucket.total for bucket in buckets) / count

    def samples(self, now=None):
        values = []
        for bucket in self._live(now):
            values.extend(bucket.samples)
        return tuple(values)

    def percentile(self, q, now=None):
        values = self.samples(now)
        if not values:
            return _NAN
        return float(np.percentile(np.asarray(values), q))

    def max(self, now=None):
        values = self.samples(now)
        return max(values) if values else _NAN

    def describe(self, now=None):
        """Window summary dict (the ``ServerStats.window`` payload)."""
        now = self._clock() if now is None else now
        summary = {"count": self.count(now),
                   "rate_per_s": round(self.rate(now), 3)}
        values = self.samples(now)
        if values:
            array = np.asarray(values)
            summary.update({
                "mean": float(array.mean()),
                "p50": float(np.percentile(array, 50)),
                "p99": float(np.percentile(array, 99)),
                "max": float(array.max()),
            })
        return summary


class MetricWindows:
    """Rolling windows over a registry's metrics, fed by the observer
    hook — the *windowed view* layer of the watch subsystem.

    Parameters
    ----------
    registry:
        The :class:`~repro.obs.metrics.MetricsRegistry` to subscribe
        to.
    prefixes:
        Metric-name prefixes to window (default: the serving metrics).
        ``()`` windows everything.
    window_s, n_buckets, clock:
        Window geometry / time source, forwarded to every
        :class:`RollingWindow`.
    """

    def __init__(self, registry, prefixes=("serve.",),
                 window_s=DEFAULT_WINDOW_S, n_buckets=DEFAULT_BUCKETS,
                 clock=time.monotonic):
        self.registry = registry
        self.prefixes = tuple(prefixes)
        self.window_s = float(window_s)
        self.n_buckets = int(n_buckets)
        self._clock = clock
        self._lock = threading.Lock()
        self._windows = {}
        registry.subscribe(self._on_record)

    def _on_record(self, name, kind, value):
        if kind == "gauge":
            return                      # last-value metrics stay lifetime
        if self.prefixes and not name.startswith(self.prefixes):
            return
        window = self._windows.get(name)
        if window is None:
            with self._lock:
                window = self._windows.setdefault(
                    name, RollingWindow(window_s=self.window_s,
                                        n_buckets=self.n_buckets,
                                        clock=self._clock))
        if kind == "counter":
            window.record(1.0, n=int(value), sample=False)
        else:
            window.record(float(value))

    def window(self, name):
        """The metric's :class:`RollingWindow`, or ``None``."""
        return self._windows.get(name)

    def names(self):
        with self._lock:
            return sorted(self._windows)

    def count(self, name, now=None):
        window = self._windows.get(name)
        return window.count(now) if window is not None else 0

    def percentile(self, name, q, now=None):
        window = self._windows.get(name)
        return window.percentile(q, now) if window is not None else _NAN

    def mean(self, name, now=None):
        window = self._windows.get(name)
        return window.mean(now) if window is not None else _NAN

    def snapshot(self, now=None):
        """``{metric name: window summary}`` for every watched metric."""
        with self._lock:
            windows = dict(self._windows)
        return {name: window.describe(now)
                for name, window in sorted(windows.items())}


# ----------------------------------------------------------------------
# SLO specification and evaluation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SloSpec:
    """One declarative service-level objective: ``name`` and ``bound``.

    ``name`` must be a :data:`KNOWN_SLOS` member; parse the CLI
    spelling (``p99_latency_s=0.25``) with :meth:`parse`.
    """

    name: str
    bound: float

    def __post_init__(self):
        if self.name not in KNOWN_SLOS:
            raise ValidationError(
                "unknown SLO %r; known SLOs: %s"
                % (self.name, ", ".join(sorted(KNOWN_SLOS))))
        object.__setattr__(self, "bound", float(self.bound))

    @property
    def direction(self):
        """``"upper"`` (breach above the bound) or ``"lower"``."""
        return KNOWN_SLOS[self.name][0]

    @classmethod
    def parse(cls, text):
        """``"p99_latency_s=0.25"`` -> ``SloSpec``."""
        name, sep, bound = str(text).partition("=")
        if not sep or not name.strip():
            raise ValidationError(
                "SLO must be NAME=BOUND (e.g. p99_latency_s=0.25), "
                "got %r" % text)
        try:
            bound = float(bound)
        except ValueError:
            raise ValidationError(
                "SLO bound must be a number, got %r" % bound) from None
        return cls(name=name.strip(), bound=bound)

    def describe(self):
        comparator = "<=" if self.direction == "upper" else ">="
        return "%s %s %g" % (self.name, comparator, self.bound)


@dataclass(frozen=True)
class SloStatus:
    """One SLO's evaluation: the spec, the measured value, the verdict.

    ``ok`` is ``True`` for a healthy or vacuous objective;
    ``vacuous`` flags the no-signal-yet case (``value`` is ``nan``).
    """

    spec: SloSpec
    value: float
    ok: bool
    vacuous: bool = False

    def describe(self):
        if self.vacuous:
            verdict = "OK (no samples)"
        else:
            verdict = "OK" if self.ok else "BREACH"
        value = "-" if math.isnan(self.value) else "%.6g" % self.value
        return [self.spec.describe(), value, verdict]


class SnapshotReader:
    """Evaluate SLOs against a ``MetricsRegistry.snapshot()`` dict.

    The post-hoc counterpart of live evaluation: ``python -m repro obs
    report`` feeds it the final ``metrics`` record of a JSONL event
    log.  Histograms read their described aggregates; counters and
    gauges read their scalar value.
    """

    def __init__(self, snapshot):
        self.snapshot = dict(snapshot or {})

    def _described(self, name):
        value = self.snapshot.get(name)
        return value if isinstance(value, dict) else None

    def percentile(self, name, q):
        described = self._described(name)
        if described is None:
            return _NAN
        return float(described.get("p%d" % int(q), _NAN))

    def mean(self, name):
        described = self._described(name)
        return float(described.get("mean", _NAN)) if described else _NAN

    def counter(self, name):
        value = self.snapshot.get(name, 0)
        return int(value) if not isinstance(value, dict) else 0

    def gauge(self, name):
        value = self.snapshot.get(name)
        if value is None or isinstance(value, dict):
            return _NAN
        return float(value)


class _LiveReader:
    """Evaluate SLOs against a live registry, windows preferred.

    Percentiles and means come from the rolling window when it has
    samples (the *recent* behaviour an SLO is about) and fall back to
    the lifetime histogram; counters use lifetime values so rates stay
    consistent with ``ServerStats``.
    """

    def __init__(self, registry, windows=None, now=None):
        self.registry = registry
        self.windows = windows
        self.now = now

    def percentile(self, name, q):
        if self.windows is not None \
                and self.windows.count(name, self.now) > 0:
            return self.windows.percentile(name, q, self.now)
        metric = self.registry.get(name)
        if metric is not None and metric.kind == "histogram":
            return metric.percentile(q)
        return _NAN

    def mean(self, name):
        if self.windows is not None \
                and self.windows.count(name, self.now) > 0:
            return self.windows.mean(name, self.now)
        metric = self.registry.get(name)
        if metric is not None and metric.kind == "histogram":
            return metric.mean
        return _NAN

    def counter(self, name):
        return int(self.registry.value(name, 0))

    def gauge(self, name):
        metric = self.registry.get(name)
        return metric.value if metric is not None else _NAN


def _ratio(numerator, denominator):
    return numerator / denominator if denominator else _NAN


def _eval_p99_latency(reader):
    return reader.percentile("serve.latency_s", 99)


def _eval_p99_latency_exact(reader):
    return reader.percentile("serve.latency_exact_s", 99)


def _eval_p99_latency_approx(reader):
    return reader.percentile("serve.latency_approx_s", 99)


def _eval_p50_latency(reader):
    return reader.percentile("serve.latency_s", 50)


def _eval_rejection_rate(reader):
    return _ratio(reader.counter("serve.rejected"),
                  reader.counter("serve.submitted"))


def _eval_error_rate(reader):
    return _ratio(reader.counter("serve.errors"),
                  reader.counter("serve.submitted"))


def _eval_min_recall(reader):
    return reader.mean("serve.recall_estimate")


def _eval_funnel_efficiency(reader):
    candidates = reader.counter("funnel.candidates")
    level2 = reader.counter("funnel.level2_survivors")
    if not candidates:
        return _NAN
    return 1.0 - level2 / candidates


def _eval_version_lag(reader):
    return reader.gauge("serve.graph_version_lag")


#: name -> (direction, evaluator).  ``direction`` "upper" breaches when
#: the value exceeds the bound, "lower" when it falls below.
KNOWN_SLOS = {
    "p99_latency_s": ("upper", _eval_p99_latency),
    "p99_latency_exact_s": ("upper", _eval_p99_latency_exact),
    "p99_latency_approx_s": ("upper", _eval_p99_latency_approx),
    "p50_latency_s": ("upper", _eval_p50_latency),
    "rejection_rate": ("upper", _eval_rejection_rate),
    "error_rate": ("upper", _eval_error_rate),
    "min_recall": ("lower", _eval_min_recall),
    "funnel_efficiency": ("lower", _eval_funnel_efficiency),
    "max_version_lag": ("upper", _eval_version_lag),
}


def evaluate_slos(specs, reader):
    """Evaluate specs against a reader; returns a tuple of statuses."""
    statuses = []
    for spec in specs:
        direction, evaluator = KNOWN_SLOS[spec.name]
        value = float(evaluator(reader))
        if math.isnan(value):
            statuses.append(SloStatus(spec=spec, value=value, ok=True,
                                      vacuous=True))
            continue
        ok = (value <= spec.bound if direction == "upper"
              else value >= spec.bound)
        statuses.append(SloStatus(spec=spec, value=value, ok=ok))
    return tuple(statuses)


class SloMonitor:
    """Continuous SLO evaluation over a registry (+ optional windows).

    The serving layer calls :meth:`evaluate` after every batch; each
    evaluation that finds a breach increments ``slo.breaches`` and the
    per-objective ``slo.breach.<name>`` counter in the same registry
    (so breaches export through the standard JSONL/trace path), and
    remembers the statuses for :meth:`last`.
    """

    def __init__(self, specs, registry, windows=None):
        self.specs = tuple(specs)
        self.registry = registry
        self.windows = windows
        self._lock = threading.Lock()
        self._last = ()

    def evaluate(self, now=None):
        if not self.specs:
            return ()
        reader = _LiveReader(self.registry, windows=self.windows, now=now)
        statuses = evaluate_slos(self.specs, reader)
        with self._lock:
            previous = {status.spec: status for status in self._last}
            for status in statuses:
                if status.ok:
                    continue
                self.registry.counter("slo.breaches").inc()
                self.registry.counter(
                    "slo.breach." + status.spec.name).inc()
                before = previous.get(status.spec)
                if before is None or before.ok:
                    # Newly breached: one loud signal per transition.
                    self.registry.counter("slo.breach_transitions").inc()
            self._last = statuses
        return statuses

    def last(self):
        """The most recent evaluation (without re-evaluating)."""
        with self._lock:
            return self._last


def slo_table(statuses, title="SLO status"):
    """Render statuses as a bench-style table."""
    from ..bench.reporting import format_table

    rows = [status.describe() for status in statuses]
    return format_table(title, ["objective", "measured", "verdict"], rows)
