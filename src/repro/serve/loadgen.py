"""Synthetic open-loop load generator for :class:`~repro.serve.KNNServer`.

Open loop means arrivals follow a fixed schedule (``rate`` requests
per second) regardless of how fast the server answers — the standard
way to measure a service's behaviour at a given offered load,
including its overload behaviour: when the server falls behind, the
queue fills, admission control rejects, and deadlines expire, exactly
as they would under real traffic (closed-loop generators hide all of
that by self-throttling).

Every request is a single query point against one shared target set,
the serving subsystem's design-centre workload: the index store should
serve all but the first request from cache, and the micro-batcher
should coalesce concurrent arrivals into planner-sized tiles.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import DeadlineExceeded, Overloaded
from .server import KNNServer

__all__ = ["LoadReport", "run_open_loop"]


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    n_requests: int
    wall_s: float
    responses: list = field(default_factory=list)  # (request id, response)
    rejected: int = 0
    expired: int = 0
    errors: list = field(default_factory=list)     # (request id, exception)
    stats: object = None

    @property
    def served(self):
        return len(self.responses)

    @property
    def offered_rate(self):
        return self.n_requests / self.wall_s if self.wall_s else 0.0

    @property
    def served_rate(self):
        return self.served / self.wall_s if self.wall_s else 0.0


def run_open_loop(server, targets, queries, k, rate=None, deadline_s=None,
                  recall_target=None, recall_every=2, **options):
    """Fire one request per query row at a fixed arrival rate.

    Parameters
    ----------
    server:
        A started :class:`KNNServer`.
    targets:
        The shared target set, passed with every request (the store
        fingerprints it per request — that is the point).
    queries:
        (n, d) array; row i becomes request i, a single-point query.
    k:
        Neighbours per request.
    rate:
        Arrival rate in requests/second; ``None`` submits as fast as
        the generator loop can (maximum offered load).
    deadline_s:
        Optional per-request deadline.
    recall_target, recall_every:
        Mix recall-targeted traffic into the run: every
        ``recall_every``-th request (deterministically, by request
        index) carries ``recall_target`` and may be served by the
        approximate graph route; the rest stay exact.
        ``recall_every=1`` sends the target with every request;
        ``recall_target=None`` (default) disables the mix entirely.
    options:
        Engine options forwarded with every request.

    Returns
    -------
    LoadReport
        Per-request outcomes plus the server's stats snapshot taken
        after all requests completed.
    """
    queries = np.asarray(queries, dtype=np.float64)
    n = len(queries)
    interarrival = (1.0 / rate) if rate else 0.0
    recall_every = max(1, int(recall_every))

    futures = []
    report = LoadReport(n_requests=n, wall_s=0.0)
    start = time.monotonic()
    for i in range(n):
        if interarrival:
            due = start + i * interarrival
            delay = due - time.monotonic()
            if delay > 0:
                time.sleep(delay)
        target_i = (recall_target if recall_target is not None
                    and i % recall_every == recall_every - 1 else None)
        try:
            futures.append((i, server.submit(queries[i], targets, k,
                                             deadline_s=deadline_s,
                                             recall_target=target_i,
                                             **options)))
        except Overloaded:
            report.rejected += 1

    for i, future in futures:
        try:
            report.responses.append((i, future.result()))
        except DeadlineExceeded:
            report.expired += 1
        except Exception as exc:
            report.errors.append((i, exc))
    report.wall_s = time.monotonic() - start
    report.stats = server.stats()
    return report
