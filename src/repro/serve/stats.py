"""Serving metrics: counters, latency percentiles, batch occupancy.

The collector is the single sink every server event reports into
(admission rejections, deadline expiries, batch flushes, per-request
completions).  Since the observability PR it is a thin facade over an
:class:`~repro.obs.metrics.MetricsRegistry` — pass the registry of an
active :class:`~repro.obs.Tracer` and the ``serve.*`` metrics land in
the same substrate as the ``join.*`` / ``gpu.*`` telemetry, exportable
through the same JSONL/Chrome-trace writers.

:meth:`StatsCollector.snapshot` produces an immutable
:class:`ServerStats` record; :meth:`ServerStats.table` renders it with
:func:`repro.bench.reporting.format_table`, the same formatter the
paper-reproduction benchmarks use, so serving numbers land in
``benchmarks/results/`` in the house style.

Empty-sample aggregates (percentiles, means, max of zero served
requests) are ``float("nan")``, never an exception — matching the
histogram semantics of :mod:`repro.obs.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..bench.reporting import format_table
from ..obs.metrics import MetricsRegistry

__all__ = ["ServerStats", "StatsCollector"]

_NAN = float("nan")


@dataclass(frozen=True)
class ServerStats:
    """Immutable snapshot of a server's lifetime metrics.

    ``route_exact``/``route_approx`` break the served count down by
    serving path (exact engine vs the recall-targeted graph tier), and
    ``latencies_exact_s``/``latencies_approx_s`` carry the matching
    per-route latency samples — so degradation and recall routing are
    observable in ``serve-bench`` output, not just per response.
    """

    submitted: int
    served: int
    rejected: int
    expired: int
    errors: int
    degraded: int
    batches: int
    queue_depth: int
    max_queue_depth: int
    cache_hits: int
    cache_misses: int
    cache_evictions: int
    cache_resident_bytes: int
    route_exact: int = 0
    route_approx: int = 0
    latencies_s: tuple = field(default=(), repr=False)
    batch_requests: tuple = field(default=(), repr=False)
    batch_rows: tuple = field(default=(), repr=False)
    latencies_exact_s: tuple = field(default=(), repr=False)
    latencies_approx_s: tuple = field(default=(), repr=False)
    #: SLO evaluation at snapshot time — a tuple of
    #: :class:`~repro.obs.watch.SloStatus` (empty without configured
    #: SLOs).
    slo: tuple = ()
    #: Rolling-window summaries ``{metric: {count, rate_per_s, ...}}``
    #: from :meth:`repro.obs.watch.MetricWindows.snapshot`.
    window: dict = field(default_factory=dict, repr=False)

    @property
    def cache_hit_rate(self):
        looked_up = self.cache_hits + self.cache_misses
        return self.cache_hits / looked_up if looked_up else 0.0

    @property
    def mean_batch_requests(self):
        return (float(np.mean(self.batch_requests))
                if self.batch_requests else _NAN)

    @property
    def mean_batch_rows(self):
        """Mean batch occupancy in query rows per ``execute()`` call."""
        return float(np.mean(self.batch_rows)) if self.batch_rows else _NAN

    def latency_percentile(self, q, route=None):
        """Latency percentile in seconds (q in [0, 100]).

        ``route`` restricts the sample to one serving path
        (``"exact"``/``"approx"``); ``None`` aggregates both.  ``nan``
        when the selected sample is empty — empty-sample aggregates
        never raise.
        """
        samples = {None: self.latencies_s,
                   "exact": self.latencies_exact_s,
                   "approx": self.latencies_approx_s}[route]
        if not samples:
            return _NAN
        return float(np.percentile(np.asarray(samples), q))

    @property
    def max_latency_s(self):
        return max(self.latencies_s) if self.latencies_s else _NAN

    def describe(self):
        """Flat dict of the headline metrics (logging, run records)."""
        return {
            "submitted": self.submitted,
            "served": self.served,
            "rejected": self.rejected,
            "expired": self.expired,
            "errors": self.errors,
            "degraded": self.degraded,
            "batches": self.batches,
            "queue_depth": self.queue_depth,
            "batch_occupancy_rows": round(self.mean_batch_rows, 2),
            "batch_occupancy_requests": round(self.mean_batch_requests, 2),
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "cache_evictions": self.cache_evictions,
            "route_exact": self.route_exact,
            "route_approx": self.route_approx,
            "p50_ms": round(self.latency_percentile(50) * 1e3, 3),
            "p90_ms": round(self.latency_percentile(90) * 1e3, 3),
            "p99_ms": round(self.latency_percentile(99) * 1e3, 3),
            "exact_p50_ms": round(
                self.latency_percentile(50, route="exact") * 1e3, 3),
            "exact_p99_ms": round(
                self.latency_percentile(99, route="exact") * 1e3, 3),
            "approx_p50_ms": round(
                self.latency_percentile(50, route="approx") * 1e3, 3),
            "approx_p99_ms": round(
                self.latency_percentile(99, route="approx") * 1e3, 3),
        }

    def table(self, title="KNN serving stats"):
        """Render the snapshot as a bench-style plain-text table."""
        rows = [
            ["requests submitted", self.submitted],
            ["requests served", self.served],
            ["rejected (overload)", self.rejected],
            ["expired (deadline)", self.expired],
            ["errors", self.errors],
            ["served degraded", self.degraded],
            ["batches executed", self.batches],
            ["batch occupancy (rows)", self.mean_batch_rows],
            ["batch occupancy (requests)", self.mean_batch_requests],
            ["index-cache hit rate %", 100.0 * self.cache_hit_rate],
            ["index-cache evictions", self.cache_evictions],
            ["index-cache resident MB",
             self.cache_resident_bytes / 1e6],
            ["queue depth (now/max)",
             "%d/%d" % (self.queue_depth, self.max_queue_depth)],
            ["served exact route", self.route_exact],
            ["served approx route", self.route_approx],
            ["latency p50 ms", self.latency_percentile(50) * 1e3],
            ["latency p90 ms", self.latency_percentile(90) * 1e3],
            ["latency p99 ms", self.latency_percentile(99) * 1e3],
            ["latency max ms", self.max_latency_s * 1e3],
            ["exact p50/p99 ms",
             "%.3f/%.3f" % (self.latency_percentile(50, "exact") * 1e3,
                            self.latency_percentile(99, "exact") * 1e3)],
            ["approx p50/p99 ms",
             "%.3f/%.3f" % (self.latency_percentile(50, "approx") * 1e3,
                            self.latency_percentile(99, "approx") * 1e3)],
        ]
        latency_window = self.window.get("serve.latency_s")
        if latency_window:
            rows.append(["window req rate /s",
                         latency_window.get("rate_per_s", 0.0)])
            if "p99" in latency_window:
                rows.append(["window latency p50/p99 ms",
                             "%.3f/%.3f" % (latency_window["p50"] * 1e3,
                                            latency_window["p99"] * 1e3)])
        for status in self.slo:
            objective, value, verdict = status.describe()
            rows.append(["SLO " + objective,
                         "%s (%s)" % (verdict, value)])
        return format_table(title, ["metric", "value"], rows)


class StatsCollector:
    """Thread-safe accumulator behind :class:`ServerStats`.

    Parameters
    ----------
    registry:
        The :class:`~repro.obs.metrics.MetricsRegistry` the ``serve.*``
        metrics live in.  Pass a tracer's registry to co-locate serving
        metrics with the join/GPU telemetry; a private registry is
        created by default so an untraced server keeps its statistics
        without any tracer existing.
    """

    def __init__(self, registry=None):
        self.registry = registry if registry is not None else MetricsRegistry()
        # Create the instruments eagerly so a snapshot of an idle
        # server reads zeros/empties instead of missing names.
        for name in ("submitted", "served", "rejected", "expired",
                     "errors", "degraded", "batches",
                     "route_exact", "route_approx"):
            self.registry.counter("serve." + name)
        for name in ("latency_s", "batch_requests", "batch_rows",
                     "latency_exact_s", "latency_approx_s",
                     "recall_estimate"):
            self.registry.histogram("serve." + name)

    def record_submitted(self):
        self.registry.counter("serve.submitted").inc()

    def record_rejected(self):
        self.registry.counter("serve.rejected").inc()

    def record_expired(self):
        self.registry.counter("serve.expired").inc()

    def record_error(self):
        self.registry.counter("serve.errors").inc()

    def record_recall_estimate(self, estimate):
        """Calibrated recall estimate of one approx-routed request."""
        self.registry.histogram("serve.recall_estimate").observe(estimate)

    def record_batch(self, n_requests, n_rows):
        self.registry.counter("serve.batches").inc()
        self.registry.histogram("serve.batch_requests").observe(n_requests)
        self.registry.histogram("serve.batch_rows").observe(n_rows)

    def record_served(self, latency_s, degraded=False, route="exact"):
        self.registry.counter("serve.served").inc()
        self.registry.histogram("serve.latency_s").observe(latency_s)
        if degraded:
            self.registry.counter("serve.degraded").inc()
        if route not in ("exact", "approx"):
            raise ValueError("route must be 'exact' or 'approx'")
        self.registry.counter("serve.route_" + route).inc()
        self.registry.histogram("serve.latency_%s_s" % route).observe(
            latency_s)

    def snapshot(self, queue_depth=0, max_queue_depth=0, store_stats=None,
                 slo=(), window=None):
        """Build a :class:`ServerStats` from the current counters."""
        registry = self.registry
        return ServerStats(
            slo=tuple(slo),
            window=dict(window) if window else {},
            submitted=registry.value("serve.submitted"),
            served=registry.value("serve.served"),
            rejected=registry.value("serve.rejected"),
            expired=registry.value("serve.expired"),
            errors=registry.value("serve.errors"),
            degraded=registry.value("serve.degraded"),
            batches=registry.value("serve.batches"),
            queue_depth=int(queue_depth),
            max_queue_depth=int(max_queue_depth),
            cache_hits=store_stats.hits if store_stats else 0,
            cache_misses=store_stats.misses if store_stats else 0,
            cache_evictions=(store_stats.evictions
                             if store_stats else 0),
            cache_resident_bytes=(store_stats.resident_bytes
                                  if store_stats else 0),
            route_exact=registry.value("serve.route_exact"),
            route_approx=registry.value("serve.route_approx"),
            latencies_s=registry.histogram("serve.latency_s").values(),
            batch_requests=registry.histogram(
                "serve.batch_requests").values(),
            batch_rows=registry.histogram("serve.batch_rows").values(),
            latencies_exact_s=registry.histogram(
                "serve.latency_exact_s").values(),
            latencies_approx_s=registry.histogram(
                "serve.latency_approx_s").values())
