"""Serving metrics: counters, latency percentiles, batch occupancy.

The collector is the single sink every server event reports into
(admission rejections, deadline expiries, batch flushes, per-request
completions).  :meth:`StatsCollector.snapshot` produces an immutable
:class:`ServerStats` record; :meth:`ServerStats.table` renders it with
:func:`repro.bench.reporting.format_table`, the same formatter the
paper-reproduction benchmarks use, so serving numbers land in
``benchmarks/results/`` in the house style.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from ..bench.reporting import format_table

__all__ = ["ServerStats", "StatsCollector"]


@dataclass(frozen=True)
class ServerStats:
    """Immutable snapshot of a server's lifetime metrics."""

    submitted: int
    served: int
    rejected: int
    expired: int
    errors: int
    degraded: int
    batches: int
    queue_depth: int
    max_queue_depth: int
    cache_hits: int
    cache_misses: int
    cache_evictions: int
    cache_resident_bytes: int
    latencies_s: tuple = field(default=(), repr=False)
    batch_requests: tuple = field(default=(), repr=False)
    batch_rows: tuple = field(default=(), repr=False)

    @property
    def cache_hit_rate(self):
        looked_up = self.cache_hits + self.cache_misses
        return self.cache_hits / looked_up if looked_up else 0.0

    @property
    def mean_batch_requests(self):
        return (float(np.mean(self.batch_requests))
                if self.batch_requests else 0.0)

    @property
    def mean_batch_rows(self):
        """Mean batch occupancy in query rows per ``execute()`` call."""
        return float(np.mean(self.batch_rows)) if self.batch_rows else 0.0

    def latency_percentile(self, q):
        """Latency percentile in seconds (q in [0, 100])."""
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_s), q))

    def describe(self):
        """Flat dict of the headline metrics (logging, run records)."""
        return {
            "submitted": self.submitted,
            "served": self.served,
            "rejected": self.rejected,
            "expired": self.expired,
            "errors": self.errors,
            "degraded": self.degraded,
            "batches": self.batches,
            "queue_depth": self.queue_depth,
            "batch_occupancy_rows": round(self.mean_batch_rows, 2),
            "batch_occupancy_requests": round(self.mean_batch_requests, 2),
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "cache_evictions": self.cache_evictions,
            "p50_ms": round(self.latency_percentile(50) * 1e3, 3),
            "p90_ms": round(self.latency_percentile(90) * 1e3, 3),
            "p99_ms": round(self.latency_percentile(99) * 1e3, 3),
        }

    def table(self, title="KNN serving stats"):
        """Render the snapshot as a bench-style plain-text table."""
        rows = [
            ["requests submitted", self.submitted],
            ["requests served", self.served],
            ["rejected (overload)", self.rejected],
            ["expired (deadline)", self.expired],
            ["errors", self.errors],
            ["served degraded", self.degraded],
            ["batches executed", self.batches],
            ["batch occupancy (rows)", self.mean_batch_rows],
            ["batch occupancy (requests)", self.mean_batch_requests],
            ["index-cache hit rate %", 100.0 * self.cache_hit_rate],
            ["index-cache evictions", self.cache_evictions],
            ["index-cache resident MB",
             self.cache_resident_bytes / 1e6],
            ["queue depth (now/max)",
             "%d/%d" % (self.queue_depth, self.max_queue_depth)],
            ["latency p50 ms", self.latency_percentile(50) * 1e3],
            ["latency p90 ms", self.latency_percentile(90) * 1e3],
            ["latency p99 ms", self.latency_percentile(99) * 1e3],
            ["latency max ms",
             (max(self.latencies_s) * 1e3 if self.latencies_s else 0.0)],
        ]
        return format_table(title, ["metric", "value"], rows)


class StatsCollector:
    """Thread-safe accumulator behind :class:`ServerStats`."""

    def __init__(self):
        self._lock = threading.Lock()
        self._submitted = 0
        self._served = 0
        self._rejected = 0
        self._expired = 0
        self._errors = 0
        self._degraded = 0
        self._batch_requests = []
        self._batch_rows = []
        self._latencies = []

    def record_submitted(self):
        with self._lock:
            self._submitted += 1

    def record_rejected(self):
        with self._lock:
            self._rejected += 1

    def record_expired(self):
        with self._lock:
            self._expired += 1

    def record_error(self):
        with self._lock:
            self._errors += 1

    def record_batch(self, n_requests, n_rows):
        with self._lock:
            self._batch_requests.append(int(n_requests))
            self._batch_rows.append(int(n_rows))

    def record_served(self, latency_s, degraded=False):
        with self._lock:
            self._served += 1
            self._latencies.append(float(latency_s))
            if degraded:
                self._degraded += 1

    def snapshot(self, queue_depth=0, max_queue_depth=0, store_stats=None):
        """Build a :class:`ServerStats` from the current counters."""
        with self._lock:
            return ServerStats(
                submitted=self._submitted,
                served=self._served,
                rejected=self._rejected,
                expired=self._expired,
                errors=self._errors,
                degraded=self._degraded,
                batches=len(self._batch_rows),
                queue_depth=int(queue_depth),
                max_queue_depth=int(max_queue_depth),
                cache_hits=store_stats.hits if store_stats else 0,
                cache_misses=store_stats.misses if store_stats else 0,
                cache_evictions=(store_stats.evictions
                                 if store_stats else 0),
                cache_resident_bytes=(store_stats.resident_bytes
                                      if store_stats else 0),
                latencies_s=tuple(self._latencies),
                batch_requests=tuple(self._batch_requests),
                batch_rows=tuple(self._batch_rows))
