"""In-process concurrent KNN query service.

:class:`KNNServer` glues the serving pieces together on top of the
PR-1 execution-engine layer:

* the :class:`~repro.serve.store.IndexStore` resolves each request's
  target set to a cached :class:`repro.index.Index` (cluster once,
  serve forever — optionally preloaded from a saved index directory,
  memory-mapped);
* the :class:`~repro.serve.batcher.MicroBatcher` coalesces concurrent
  small requests into planner-sized tiles, bounds the queue
  (:class:`~repro.errors.Overloaded`) and drops expired work
  (:class:`~repro.errors.DeadlineExceeded`);
* one ``engine.execute()`` call answers each tile, its rows split back
  per request — so every served answer is exactly what a direct
  :func:`repro.knn_join` call returns;
* under sustained overload (queue pressure at or above
  ``degrade_at``), batches fall back to the cheaper
  ``degraded_method`` engine, surfaced per response via
  ``response.degraded`` — answers stay exact (every registered engine
  is), only the performance accounting changes.

Example
-------
::

    from repro.serve import KNNServer

    with KNNServer(method="sweet") as server:
        response = server.query(point, targets, k=10)
        response.indices        # (k,) neighbour ids

Thread safety: ``submit``/``query`` may be called from any number of
threads; engine execution happens on the single scheduler thread, so
engines and prepared indexes never race.
"""

from __future__ import annotations

import itertools
import logging
import time
from dataclasses import dataclass, field, replace

import numpy as np

from .. import obs
from ..core.api import _validate
from ..engine.executor import execute
from ..engine.planner import _DECIDE_KEYS, plan_shape
from ..engine.registry import get_engine
from ..errors import Overloaded, ValidationError
from ..gpu.device import tesla_k20c
from .batcher import MicroBatcher, PendingRequest
from .stats import StatsCollector
from .store import IndexStore

__all__ = ["KNNServer", "ServeConfig", "ServeResponse"]

logger = logging.getLogger("repro.serve")


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs of a :class:`KNNServer`.

    Attributes
    ----------
    method:
        Primary engine; must support a prepared index (``"sweet"``,
        ``"ti-gpu"``, ``"ti-cpu"``, or a plugin engine declaring the
        capability).
    degraded_method:
        Engine used when queue pressure reaches ``degrade_at``
        (``None`` disables degradation).  Any registered engine works;
        engine options of the primary method are not forwarded to it.
    degrade_at:
        Queue fill fraction (0..1] at which batches degrade.
    max_batch_size:
        Coalescing cap in query rows; the effective tile is
        ``min(max_batch_size, planner rows_per_batch)`` so a batch
        never exceeds what the device budget admits in one call.
    max_wait_s:
        Longest a request may wait for co-batching before a partial
        tile flushes.
    max_queue_depth:
        Admission-control bound on queued requests.
    default_deadline_s:
        Deadline applied to requests that do not carry their own.
    seed, mt:
        Landmark seed / target landmark-count override used when
        preparing indexes (part of the cache key).
    index_dir:
        Optional saved-index directory (``python -m repro index build``
        / :meth:`repro.index.Index.save`) preloaded into the store at
        construction, memory-mapped.  Requests whose target set matches
        its fingerprint — and whose ``seed``/``mt`` match the knobs it
        was built with — are warm from the first query, with the target
        arrays shared zero-copy through the page cache.
    graph_method:
        Engine serving requests that carry a ``recall_target``
        (``"graph-bfs"``; ``None`` disables the approximate route).
        Used only when the request's index has a fresh
        :class:`~repro.graph.KNNGraph` attached — otherwise the
        request silently falls back to the exact route and the
        response reports ``route="exact"``.
    workers, pool:
        Shard each coalesced batch across a :mod:`repro.parallel`
        worker pool (``workers=0`` means one per core; ``pool`` is
        ``"process"``/``"thread"``/``"serial"``).  Defaults follow
        ``REPRO_WORKERS``/``REPRO_POOL``; answers are bit-identical to
        serial execution either way.
    device:
        Device for simulated-GPU engines (defaults to the Tesla K20c).
    store_budget_bytes, store_max_entries:
        Index-cache eviction policy (see :class:`IndexStore`).
    tracer:
        Optional :class:`~repro.obs.Tracer`.  The context-var tracer of
        the submitting thread does **not** reach the scheduler thread,
        so servers take the tracer explicitly; when set, every request
        gets a ``serve.request`` span (one trace id per request) whose
        children cover the queue wait, the coalesced batch, the engine
        execution and the per-request result split, and the server's
        ``serve.*`` metrics land in the tracer's registry.
    slos:
        Declarative SLO set (:class:`~repro.obs.watch.SloSpec` objects
        or ``"name=bound"`` strings) evaluated by an
        :class:`~repro.obs.watch.SloMonitor` after every batch over the
        server's rolling metric windows.  Statuses surface in
        :meth:`KNNServer.stats` / ``ServerStats.table()``; breaches
        increment ``slo.breaches`` and emit a ``serve.slo_breach``
        event on breach transitions.
    window_s:
        Width of the rolling metric windows (seconds) the SLO monitor
        and the windowed ``ServerStats`` rows read from.
    """

    method: str = "sweet"
    degraded_method: str = "brute"
    degrade_at: float = 0.75
    max_batch_size: int = 64
    max_wait_s: float = 0.002
    max_queue_depth: int = 256
    default_deadline_s: float = None
    seed: int = 0
    mt: int = None
    index_dir: str = None
    graph_method: str = "graph-bfs"
    workers: int = None
    pool: str = None
    device: object = None
    store_budget_bytes: int = None
    store_max_entries: int = None
    tracer: object = None
    slos: tuple = ()
    window_s: float = 60.0


@dataclass(frozen=True)
class ServeResponse:
    """One request's answer plus its serving metadata.

    ``distances``/``indices`` are shape (k,) for a single-point request
    and (n, k) for a batch request — exactly the rows a direct
    :func:`repro.knn_join` call would return for the same queries.
    ``labels`` (classification requests) and ``scores`` (novelty
    requests) carry the workload post-processing of
    :mod:`repro.workloads`; plain queries leave them ``None``.

    ``route`` reports which path served the answer: ``"exact"`` (the
    configured exact engine — always the case when the request carried
    no ``recall_target``, and the fallback when the index has no fresh
    graph) or ``"approx"`` (the graph-walk engine at the ``ef``
    resolved from the request's ``recall_target`` through the graph's
    calibration curve — echoed in ``ef``/``recall_target``).
    """

    distances: np.ndarray
    indices: np.ndarray
    method: str
    engine: str
    degraded: bool
    cache_hit: bool
    latency_s: float
    batch_rows: int
    batch_requests: int
    request_id: str = None
    labels: object = None
    scores: object = None
    route: str = "exact"
    recall_target: float = None
    ef: int = None
    recall_estimate: float = None
    audit: object = None


@dataclass
class _Payload:
    """Server-side request state carried through the batcher."""

    queries: np.ndarray
    index: object
    k: int
    options: dict
    single: bool
    cache_hit: bool
    row_slice: slice = field(default=None)
    request_id: str = None
    request_span: object = None
    queue_span: object = None
    route: str = "exact"
    recall_target: float = None
    ef: int = None
    recall_estimate: float = None
    explain: bool = False


class KNNServer:
    """Concurrent KNN query service over the execution-engine layer.

    Parameters may be given as a :class:`ServeConfig`, as keyword
    overrides, or both (keywords win)::

        server = KNNServer(method="ti-cpu", max_wait_s=0.001)
        server.start()
        ...
        server.stop()
    """

    def __init__(self, config=None, **overrides):
        config = config or ServeConfig()
        if overrides:
            config = replace(config, **overrides)
        self.config = config

        self._spec = get_engine(config.method)
        if not self._spec.caps.supports_prepared_index:
            raise ValidationError(
                "serving engine %r does not support a prepared index"
                % config.method)
        if self._spec.caps.result_kind != "knn":
            raise ValidationError(
                "serving engine %r returns variable-cardinality results; "
                "the server's responses are fixed-k" % config.method)
        self._degraded_spec = (get_engine(config.degraded_method)
                               if config.degraded_method else None)
        if (self._degraded_spec is not None
                and self._degraded_spec.caps.result_kind != "knn"):
            raise ValidationError(
                "degraded engine %r returns variable-cardinality results; "
                "the server's responses are fixed-k" % config.degraded_method)
        self._graph_spec = (get_engine(config.graph_method)
                            if config.graph_method else None)
        if (self._graph_spec is not None
                and self._graph_spec.caps.result_kind != "knn"):
            raise ValidationError(
                "graph engine %r returns variable-cardinality results; "
                "the server's responses are fixed-k" % config.graph_method)
        if not 0.0 < config.degrade_at <= 1.0:
            raise ValidationError("degrade_at must be in (0, 1]")
        if config.max_batch_size <= 0:
            raise ValidationError("max_batch_size must be positive")

        needs_device = self._spec.caps.needs_device or (
            self._degraded_spec is not None
            and self._degraded_spec.caps.needs_device)
        self._device = ((config.device or tesla_k20c())
                        if needs_device else config.device)
        self._rng = np.random.default_rng(config.seed)

        # Per-(index, version) cache of the scheduler's clusterability
        # proxy (the landmark radii are free, the centre spread is not).
        self._clusterability_cache = {}

        self.store = IndexStore(budget_bytes=config.store_budget_bytes,
                                max_entries=config.store_max_entries)
        if config.index_dir is not None:
            self.store.preload(config.index_dir)
        self._tracer = config.tracer
        self._request_ids = itertools.count(1)
        self.stats_collector = StatsCollector(
            registry=(self._tracer.registry
                      if self._tracer is not None else None))
        self._batcher = MicroBatcher(
            self._execute_batch, max_wait_s=config.max_wait_s,
            max_queue_depth=config.max_queue_depth,
            on_expired=self._on_expired)
        self._tile_cache = {}

        # Rolling windows over the serve.* metrics plus the SLO
        # monitor — evaluated on the scheduler thread after every
        # batch, so statuses are race-free by construction.
        from ..obs.watch import MetricWindows, SloMonitor, SloSpec
        specs = tuple(spec if isinstance(spec, SloSpec)
                      else SloSpec.parse(spec) for spec in config.slos)
        self.windows = MetricWindows(self.stats_collector.registry,
                                     window_s=config.window_s)
        self.slo_monitor = SloMonitor(specs,
                                      self.stats_collector.registry,
                                      windows=self.windows)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self):
        """Start the scheduler thread; idempotent."""
        self._batcher.start()
        return self

    def stop(self):
        """Stop the scheduler after draining every in-flight request."""
        self._batcher.stop()

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False

    @property
    def running(self):
        return self._batcher.running

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def submit(self, queries, targets, k, deadline_s=None,
               recall_target=None, explain=False, **options):
        """Enqueue a request; returns a future of :class:`ServeResponse`.

        ``queries`` may be a single point of shape (d,) or a small
        batch of shape (n, d).  ``targets`` is fingerprinted and
        resolved through the index store, so passing the same target
        set (by value) never re-clusters it.

        ``recall_target`` opts the request into the approximate tier:
        when the resolved index carries a fresh
        :class:`~repro.graph.KNNGraph`, the request is served by the
        graph engine at the ``ef`` the graph's calibration curve maps
        the target to, and the response reports ``route="approx"``.
        Without a fresh graph the request falls back to the exact
        engine (``route="exact"``); with ``recall_target=None``
        (default) the request path is byte-for-byte the pre-graph
        behaviour.

        ``explain=True`` attaches a
        :class:`~repro.obs.audit.QueryAudit` to the response —
        engine/plan knobs, shard fan-out, per-stage funnel counts,
        route/``ef``/recall estimate and per-span timings.  Explain
        joins the coalescing key, so an explain request is never mixed
        into another request's tile: its funnel counts are exactly the
        direct :func:`repro.knn_join` counters for the same queries.

        Raises
        ------
        Overloaded
            When admission control rejects the request.
        ServeError
            When the server is not running.
        ValidationError
            For malformed inputs or options.
        """
        if "mt" in options:
            raise ValidationError(
                "mt is fixed per prepared index; set it in ServeConfig")
        if recall_target is not None \
                and not 0.0 < float(recall_target) <= 1.0:
            raise ValidationError("recall_target must be in (0, 1]")
        queries = np.asarray(queries, dtype=np.float64)
        single = queries.ndim == 1
        if single:
            queries = queries[np.newaxis, :]
        queries, targets, k = _validate(queries, targets, k)

        self.stats_collector.record_submitted()
        index, cache_hit = self.store.get(
            targets, seed=self.config.seed, mt=self.config.mt,
            memory_budget_bytes=(self._device.global_mem_bytes
                                 if self._device is not None else None))

        route, ef, recall_estimate = "exact", None, None
        graph = getattr(index, "graph", None)
        if graph is not None:
            # Staleness signal for the max_version_lag SLO.
            self.stats_collector.registry.gauge(
                "serve.graph_version_lag").set(
                    int(index.version) - graph.built_version)
        if recall_target is not None and self._graph_spec is not None:
            if (graph is not None and graph.is_fresh_for(index)
                    and self._approx_route_pays(index, k, len(queries))):
                route = "approx"
                ef = int(graph.ef_for(recall_target, k))
                if graph.calibration is not None:
                    recall_estimate = float(
                        graph.calibration.recall_at(ef))
                    self.stats_collector.record_recall_estimate(
                        recall_estimate)

        opts_key = tuple(sorted(options.items()))
        store_key = self.store.key_for(index.targets, self.config.seed,
                                       self.config.mt)
        # Route and ef join the coalescing key so exact and approximate
        # requests never share a tile; all-exact traffic produces the
        # same key — hence the same batches — as before the graph tier.
        # Explain joins it too: an audited request gets its own tile,
        # so its funnel counts equal a direct join of the same queries.
        batch_key = (store_key, k, opts_key, route, ef, bool(explain))
        request_id = "req-%d" % next(self._request_ids)
        payload = _Payload(queries=queries, index=index, k=k,
                           options=dict(options), single=single,
                           cache_hit=cache_hit, request_id=request_id,
                           route=route, recall_target=recall_target,
                           ef=ef, recall_estimate=recall_estimate,
                           explain=bool(explain))
        if self._tracer is not None:
            payload.request_span = self._tracer.start_span(
                "serve.request", trace_id=request_id,
                request_id=request_id, k=k, rows=len(queries),
                cache_hit=cache_hit, route=route)
            payload.queue_span = self._tracer.start_span(
                "serve.queue", parent=payload.request_span,
                trace_id=request_id)
        request = PendingRequest(
            key=batch_key, payload=payload, n_rows=len(queries),
            max_batch=self._tile_rows(index, k, options),
            deadline_s=(deadline_s if deadline_s is not None
                        else self.config.default_deadline_s))
        try:
            return self._batcher.submit(request)
        except Overloaded as exc:
            self.stats_collector.record_rejected()
            logger.debug("admission control rejected %s: %s",
                         request_id, exc)
            self._close_request_spans(payload, outcome="rejected",
                                      error=repr(exc))
            raise

    def query(self, queries, targets, k, deadline_s=None, timeout=None,
              **options):
        """Blocking convenience: ``submit(...).result(timeout)``."""
        return self.submit(queries, targets, k, deadline_s=deadline_s,
                           **options).result(timeout)

    def classify(self, queries, targets, labels, k, deadline_s=None,
                 timeout=None, **options):
        """Majority-vote classification served through the batcher.

        The KNN answer takes the normal request path (coalescing,
        degradation, deadlines); the vote itself
        (:func:`repro.workloads.majority_vote`) is pure post-processing
        on the caller's thread.  Returns a :class:`ServeResponse` whose
        ``labels`` field holds the prediction — a scalar for a single
        point, an (n,) vector for a batch.
        """
        from ..workloads import majority_vote

        labels = np.asarray(labels)
        targets = np.asarray(targets, dtype=np.float64)
        if labels.ndim != 1 or labels.shape[0] != targets.shape[0]:
            raise ValidationError(
                "labels must be a (|T|,) vector aligned with targets")
        response = self.query(queries, targets, k, deadline_s=deadline_s,
                              timeout=timeout, **options)
        single = response.indices.ndim == 1
        votes = majority_vote(
            labels[np.atleast_2d(response.indices)])
        return replace(response, labels=votes[0] if single else votes)

    def novelty(self, queries, targets, k, deadline_s=None, timeout=None,
                **options):
        """Average-distance novelty scoring served through the batcher.

        Returns a :class:`ServeResponse` whose ``scores`` field is the
        mean distance to the k nearest targets — a float for a single
        point, an (n,) vector for a batch (see
        :func:`repro.workloads.novelty_scores`).
        """
        response = self.query(queries, targets, k, deadline_s=deadline_s,
                              timeout=timeout, **options)
        single = response.distances.ndim == 1
        scores = np.atleast_2d(response.distances).mean(axis=1)
        return replace(response,
                       scores=float(scores[0]) if single else scores)

    def stats(self):
        """A :class:`~repro.serve.stats.ServerStats` snapshot.

        Includes the rolling-window summaries (``stats.window``) and,
        when SLOs are configured, a fresh evaluation of every objective
        (``stats.slo``).
        """
        slo = (self.slo_monitor.evaluate()
               if self.slo_monitor.specs else ())
        return self.stats_collector.snapshot(
            queue_depth=self._batcher.queue_depth(),
            max_queue_depth=self.config.max_queue_depth,
            store_stats=self.store.stats(),
            slo=slo, window=self.windows.snapshot())

    # ------------------------------------------------------------------
    # Scheduler side
    # ------------------------------------------------------------------
    def _tile_rows(self, index, k, options):
        """Planner-sized coalescing tile for this index/k/knobs."""
        knobs = tuple(sorted((name, options[name]) for name in options
                             if name in _DECIDE_KEYS))
        key = (index.mt, len(index.targets), index.dim, k, knobs)
        rows = self._tile_cache.get(key)
        if rows is None:
            exec_plan = plan_shape(
                self.config.max_batch_size, len(index.targets), k,
                index.dim, method=self._spec.name, device=self._device,
                mt=index.mt, **dict(knobs))
            rows = max(1, min(self.config.max_batch_size,
                              exec_plan.batching.rows_per_batch))
            self._tile_cache[key] = rows
        return rows

    def _close_request_spans(self, payload, **attributes):
        """Finish a request's queue + request spans (any outcome path)."""
        if self._tracer is None:
            return
        if payload.queue_span is not None:
            self._tracer.finish_span(payload.queue_span)
        if payload.request_span is not None:
            payload.request_span.annotate(**attributes)
            self._tracer.finish_span(payload.request_span)

    def _on_expired(self, request):
        """Batcher callback: a request's deadline lapsed in the queue."""
        self.stats_collector.record_expired()
        payload = request.payload
        logger.debug("deadline exceeded for %s after %.4fs in queue",
                     payload.request_id, request.waited(time.monotonic()))
        self._close_request_spans(payload, outcome="expired")

    def _execute_batch(self, requests, pressure):
        """Run one coalesced tile and split the answers per request.

        Called on the scheduler thread only, so prepared indexes and
        the landmark RNG are never shared across concurrent executes.
        The scheduler thread has no context-var tracer of its own;
        when the server was given one, it is re-activated here so the
        engine/kernel spans of the batch nest under ``serve.batch``.
        """
        tracer = self._tracer
        if tracer is None:
            return self._run_batch(requests, pressure)
        for request in requests:
            tracer.finish_span(request.payload.queue_span)
        request_ids = [r.payload.request_id for r in requests]
        with obs.use_tracer(tracer):
            with tracer.span("serve.batch", trace_id=request_ids[0],
                             requests=len(requests),
                             request_ids=request_ids,
                             pressure=round(pressure, 4)):
                return self._run_batch(requests, pressure)

    def _index_clusterability(self, index):
        """The scheduler's radii-derived proxy, cached per version."""
        from .. import sched

        key = (id(index), int(index.version))
        value = self._clusterability_cache.get(key)
        if value is None:
            value = sched.clusterability_from_clusters(
                index.target_clusters)
            self._clusterability_cache.clear()
            self._clusterability_cache[key] = value
        return value

    def _degradation_pays(self, index, k, n_rows):
        """Under pressure, does swapping to the degraded engine
        actually lower this batch's predicted cost?

        Without a calibrated cost model this is always true — the
        pressure threshold alone decides, exactly as before.
        """
        from .. import sched

        if sched.current_model() is None:
            return True
        pays = sched.degradation_pays(
            self._spec.name, self._degraded_spec.name, n_rows,
            len(index.targets), k, index.dim,
            clusterability=self._index_clusterability(index))
        if not pays:
            obs.event("sched.degrade_skipped",
                      primary=self._spec.name,
                      degraded=self._degraded_spec.name, rows=int(n_rows))
        return pays

    def _approx_route_pays(self, index, k, n_rows):
        """Is the graph route actually predicted cheaper than exact?

        Without a calibrated cost model, a fresh graph always wins —
        the previous routing rule.
        """
        from .. import sched

        if sched.current_model() is None:
            return True
        pays = sched.approx_route_pays(
            self._spec.name, self._graph_spec.name, n_rows,
            len(index.targets), k, index.dim,
            clusterability=self._index_clusterability(index))
        if not pays:
            obs.event("sched.approx_route_skipped",
                      exact=self._spec.name,
                      graph=self._graph_spec.name, rows=int(n_rows))
        return pays

    def _run_batch(self, requests, pressure):
        first = requests[0].payload
        batch = (first.queries if len(requests) == 1
                 else np.vstack([r.payload.queries for r in requests]))
        start = 0
        for request in requests:
            stop = start + request.n_rows
            request.payload.row_slice = slice(start, stop)
            start = stop

        # The approximate route never degrades — the graph walk *is*
        # the cheap path, so swapping it for the degraded exact engine
        # under pressure would raise, not lower, the batch cost.
        approx = first.route == "approx"
        degraded = (not approx and self._degraded_spec is not None
                    and pressure >= self.config.degrade_at
                    and self._degradation_pays(first.index, first.k,
                                               len(batch)))
        if degraded:
            logger.debug(
                "queue pressure %.2f >= %.2f: degrading batch of %d "
                "requests to %s", pressure, self.config.degrade_at,
                len(requests), self._degraded_spec.name)
            obs.event("serve.degraded", pressure=round(pressure, 4),
                      engine=self._degraded_spec.name)
        try:
            if approx:
                spec = self._graph_spec
                index = first.index
                dead = (index.tombstones if index.n_tombstones else None)
                result = execute(
                    spec, batch, index.targets, first.k,
                    rng=self._rng, device=self._device,
                    workers=self.config.workers, pool=self.config.pool,
                    explain=first.explain,
                    graph=index.graph, ef=first.ef, dead_mask=dead,
                    **first.options)
            elif degraded:
                spec = self._degraded_spec
                result = execute(
                    spec, batch, first.index.targets, first.k,
                    rng=self._rng, device=self._device,
                    workers=self.config.workers, pool=self.config.pool,
                    explain=first.explain)
            else:
                spec = self._spec
                join_plan = first.index.join_plan(batch)
                result = execute(
                    spec, batch, first.index.targets, first.k,
                    rng=self._rng, device=self._device, plan=join_plan,
                    index=first.index, workers=self.config.workers,
                    pool=self.config.pool, explain=first.explain,
                    **first.options)
        except Exception as exc:
            for request in requests:
                request.future.set_exception(exc)
                self.stats_collector.record_error()
                self._close_request_spans(request.payload,
                                          outcome="error", error=repr(exc))
            self._check_slos()
            return

        self.stats_collector.record_batch(len(requests), len(batch))
        with obs.span("serve.merge", requests=len(requests),
                      rows=len(batch)):
            now = time.monotonic()
            for request in requests:
                payload = request.payload
                rows = payload.row_slice
                distances = result.distances[rows]
                indices = result.indices[rows]
                if payload.single:
                    distances, indices = distances[0], indices[0]
                latency = request.waited(now)
                audit = None
                if payload.explain and result.audit is not None:
                    audit = result.audit.replace(
                        request_id=payload.request_id,
                        route=payload.route,
                        recall_target=payload.recall_target,
                        ef=payload.ef,
                        recall_estimate=payload.recall_estimate,
                        degraded=degraded,
                        cache_hit=payload.cache_hit,
                        latency_s=round(latency, 6),
                        batch_rows=len(batch),
                        batch_requests=len(requests))
                request.future.set_result(ServeResponse(
                    distances=distances, indices=indices,
                    method=result.method, engine=spec.name,
                    degraded=degraded, cache_hit=payload.cache_hit,
                    latency_s=latency, batch_rows=len(batch),
                    batch_requests=len(requests),
                    request_id=payload.request_id,
                    route=payload.route,
                    recall_target=payload.recall_target,
                    ef=payload.ef,
                    recall_estimate=payload.recall_estimate,
                    audit=audit))
                self.stats_collector.record_served(latency,
                                                   degraded=degraded,
                                                   route=payload.route)
                self._close_request_spans(
                    payload, outcome="served", engine=spec.name,
                    degraded=degraded, route=payload.route,
                    latency_s=round(latency, 6),
                    batch_rows=len(batch),
                    batch_requests=len(requests))
        self._check_slos()

    def _check_slos(self):
        """Evaluate the configured SLOs (scheduler thread, post-batch)."""
        if not self.slo_monitor.specs:
            return
        previous = {status.spec: status.ok
                    for status in self.slo_monitor.last()}
        for status in self.slo_monitor.evaluate():
            if status.ok or previous.get(status.spec, True) is False:
                continue
            logger.warning("SLO breached: %s (measured %.6g)",
                           status.spec.describe(), status.value)
            obs.event("serve.slo_breach", slo=status.spec.name,
                      bound=status.spec.bound,
                      value=round(status.value, 6))
