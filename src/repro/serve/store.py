"""Byte-budgeted LRU cache of :class:`repro.index.Index` objects.

The expensive, query-independent TI state (landmark selection,
clustering, the descending member sort — Sec. III-A) depends only on
the target set, the landmark seed and ``mt``.  The store keys prepared
indexes on exactly that triple — the target-set *content* fingerprint
(:func:`repro.index.fingerprint_points`, O(1) on repeat lookups thanks
to the identity memo), not object identity — so repeated traffic
against the same target set never re-clusters, no matter which array
object each request carries.

The store holds no clustering or rebuild logic of its own: indexes are
built by :class:`repro.index.Index`, preloaded from disk with
:meth:`IndexStore.preload`, or adopted with :meth:`IndexStore.put`.
Each entry remembers the ``(fingerprint, version)`` identity it was
admitted under; an index whose ``version`` has moved on (incremental
``add``/``remove``) is re-admitted with fresh size accounting, counted
as an invalidation, so byte budgets and cache identity stay honest
across updates.

Eviction is least-recently-used under a byte budget measured by
:attr:`repro.index.Index.nbytes` (target matrix + cluster metadata),
the in-process analogue of the paper's device-memory budget: the store
holds as many target sets as fit, and drops the coldest one when a new
set would overflow.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..errors import ValidationError
from ..index import Index, fingerprint_points

__all__ = ["IndexStore", "IndexStoreStats"]


@dataclass(frozen=True)
class IndexStoreStats:
    """Counters snapshot of one :class:`IndexStore`."""

    hits: int
    misses: int
    evictions: int
    entries: int
    resident_bytes: int
    budget_bytes: int
    #: Entries re-admitted because their index's ``version`` moved on
    #: (incremental add/remove) since admission.
    invalidations: int = 0

    @property
    def hit_rate(self):
        looked_up = self.hits + self.misses
        return self.hits / looked_up if looked_up else 0.0


class _Entry:
    """One cached index plus the identity and size it was admitted under."""

    __slots__ = ("index", "version", "nbytes")

    def __init__(self, index):
        self.index = index
        self.version = index.version
        self.nbytes = index.nbytes


class IndexStore:
    """Thread-safe LRU cache of prepared target indexes.

    Parameters
    ----------
    budget_bytes:
        Total resident-size budget across cached indexes; ``None``
        means unbounded.  A single index larger than the whole budget
        is still cached (alone) rather than rejected, so the store
        never thrashes on its only working set.
    max_entries:
        Optional entry-count cap applied alongside the byte budget.
    """

    def __init__(self, budget_bytes=None, max_entries=None):
        if budget_bytes is not None and int(budget_bytes) <= 0:
            raise ValidationError("budget_bytes must be positive or None")
        if max_entries is not None and int(max_entries) <= 0:
            raise ValidationError("max_entries must be positive or None")
        self._budget = None if budget_bytes is None else int(budget_bytes)
        self._max_entries = (None if max_entries is None
                             else int(max_entries))
        self._lock = threading.Lock()
        self._entries = OrderedDict()  # key -> _Entry
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    @staticmethod
    def key_for(targets, seed=0, mt=None):
        """The cache key: (content fingerprint, seed, mt)."""
        return (fingerprint_points(targets), int(seed), mt)

    def get(self, targets, seed=0, mt=None, memory_budget_bytes=None):
        """Fetch (or build and cache) the prepared index for ``targets``.

        Returns
        -------
        (Index, bool)
            The index and whether it was a cache hit.  Building happens
            under the store lock, so concurrent first requests for the
            same target set build it exactly once.  An entry whose
            index has been incrementally updated since admission
            (``version`` moved on) is revalidated in place — fresh
            size accounting, counted as an invalidation, still a hit.
        """
        key = self.key_for(targets, seed=seed, mt=mt)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                if entry.version != entry.index.version:
                    self._invalidations += 1
                    self._readmit(key, entry.index)
                self._hits += 1
                return entry.index, True
            self._misses += 1
            index = Index(targets, seed=seed, mt=mt,
                          memory_budget_bytes=memory_budget_bytes)
            self._admit(key, index)
            return index, False

    def put(self, index, seed=None, mt=None):
        """Admit an existing :class:`~repro.index.Index` (warm start).

        The key derives from the index's own identity — its build-time
        fingerprint, seed and requested ``mt`` — so a later
        :meth:`get` with the same target content and knobs hits it.
        """
        seed = index.seed if seed is None else seed
        mt = index.mt_requested if mt is None else mt
        key = (index.fingerprint, int(seed), mt)
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._admit(key, index)
        return key

    def preload(self, path, mmap=True):
        """Load a saved index directory into the store (zero-copy).

        Returns the loaded :class:`~repro.index.Index`; serving traffic
        whose target set matches its fingerprint (and knobs) is then a
        hit from request one, with the arrays memory-mapped instead of
        rebuilt.
        """
        index = Index.load(path, mmap=mmap)
        self.put(index)
        return index

    def _readmit(self, key, index):
        entry = self._entries.pop(key)
        self._bytes -= entry.nbytes
        self._admit(key, index)

    def _admit(self, key, index):
        entry = _Entry(index)
        self._entries[key] = entry
        self._bytes += entry.nbytes
        while self._entries and self._over_capacity(newest=key):
            old_key, old = self._entries.popitem(last=False)
            self._bytes -= old.nbytes
            self._evictions += 1

    def _over_capacity(self, newest):
        # Never evict the entry just admitted: an index larger than the
        # whole budget lives alone rather than being rejected outright.
        if len(self._entries) == 1 and newest in self._entries:
            return False
        if self._max_entries is not None \
                and len(self._entries) > self._max_entries:
            return True
        return self._budget is not None and self._bytes > self._budget

    def stats(self):
        """A consistent :class:`IndexStoreStats` snapshot."""
        with self._lock:
            return IndexStoreStats(
                hits=self._hits, misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                entries=len(self._entries),
                resident_bytes=self._bytes,
                budget_bytes=self._budget if self._budget is not None else 0)

    def clear(self):
        """Drop every cached index (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def __len__(self):
        with self._lock:
            return len(self._entries)
