"""Micro-batch scheduler: coalesce small requests into engine tiles.

Single-point KNN requests are the worst case for a GPU engine — each
``engine.execute()`` call pays the whole launch/preparation overhead
for one row of work.  The batcher turns a stream of small concurrent
requests into planner-sized tiles: pending requests that share a batch
key (same prepared index, same ``k``, same engine options) are merged
into one query matrix and executed together, then the result rows are
split back per request.

Scheduling policy (the classic micro-batching triangle):

* **flush on size** — as soon as a key group reaches its
  ``max_batch`` (the planner's rows-per-batch tile, or the configured
  cap, whichever is smaller);
* **flush on deadline** — no request waits in the queue longer than
  ``max_wait_s``, bounding the latency cost of coalescing;
* **admission control** — the queue is bounded; a full queue rejects
  new work with a typed :class:`~repro.errors.Overloaded` instead of
  queueing unbounded backlog.

Requests carry optional per-request deadlines; expired requests are
dropped at flush time (completed with
:class:`~repro.errors.DeadlineExceeded`) before any engine work is
spent on them.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..errors import DeadlineExceeded, Overloaded, ServeError

__all__ = ["MicroBatcher", "PendingRequest", "ServeFuture"]


class ServeFuture:
    """Completion handle for one submitted request.

    A deliberately small, dependency-free future: ``result(timeout)``
    blocks until the scheduler completes the request, then returns the
    response or re-raises the recorded exception
    (:class:`~repro.errors.DeadlineExceeded`, or whatever the engine
    raised).
    """

    def __init__(self):
        self._done = threading.Event()
        self._result = None
        self._exception = None

    def done(self):
        return self._done.is_set()

    def set_result(self, result):
        self._result = result
        self._done.set()

    def set_exception(self, exception):
        self._exception = exception
        self._done.set()

    def result(self, timeout=None):
        if not self._done.wait(timeout):
            raise TimeoutError("request not completed within %s s"
                               % (timeout,))
        if self._exception is not None:
            raise self._exception
        return self._result

    def exception(self, timeout=None):
        if not self._done.wait(timeout):
            raise TimeoutError("request not completed within %s s"
                               % (timeout,))
        return self._exception


@dataclass
class PendingRequest:
    """One enqueued request, as the scheduler sees it.

    ``key`` groups coalescible requests; ``payload`` is opaque to the
    batcher (the server stores its per-request state there).
    ``max_batch`` is carried per request because the planner-sized tile
    depends on the request's index and ``k``.
    """

    key: object
    payload: object
    n_rows: int = 1
    max_batch: int = 64
    deadline_s: float = None
    enqueued_at: float = field(default_factory=time.monotonic)
    future: ServeFuture = field(default_factory=ServeFuture)

    def expired(self, now):
        return (self.deadline_s is not None
                and now - self.enqueued_at > self.deadline_s)

    def waited(self, now):
        return now - self.enqueued_at


class MicroBatcher:
    """Bounded request queue plus a single scheduler thread.

    Parameters
    ----------
    flush:
        Callable ``(requests, pressure) -> None`` executing one
        coalesced batch.  ``requests`` share a key; ``pressure`` is the
        queue fill fraction observed at dispatch (the degradation
        signal).  The callable must complete every request's future;
        any exception it raises is recorded on the batch's futures.
    max_wait_s:
        Upper bound on queue residence before a partial batch flushes.
    max_queue_depth:
        Admission-control bound on pending requests.
    """

    def __init__(self, flush, max_wait_s=0.005, max_queue_depth=256,
                 on_expired=None):
        if max_queue_depth <= 0:
            raise ServeError("max_queue_depth must be positive")
        if max_wait_s < 0:
            raise ServeError("max_wait_s must be non-negative")
        self._flush = flush
        self._on_expired = on_expired
        self.max_wait_s = float(max_wait_s)
        self.max_queue_depth = int(max_queue_depth)
        self._queue = []
        self._cond = threading.Condition()
        self._running = False
        self._thread = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self):
        with self._cond:
            if self._running:
                return
            self._running = True
            self._thread = threading.Thread(
                target=self._loop, name="repro-serve-batcher", daemon=True)
            self._thread.start()

    def stop(self):
        """Stop the scheduler, draining every in-flight request first."""
        with self._cond:
            if not self._running:
                return
            self._running = False
            self._cond.notify_all()
        self._thread.join()
        self._thread = None

    @property
    def running(self):
        return self._running

    def queue_depth(self):
        with self._cond:
            return len(self._queue)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, request):
        """Enqueue a :class:`PendingRequest` or reject it.

        Raises
        ------
        Overloaded
            When the queue is at ``max_queue_depth``.
        ServeError
            When the scheduler is not running.
        """
        with self._cond:
            if not self._running:
                raise ServeError("server is not running; call start()")
            if len(self._queue) >= self.max_queue_depth:
                raise Overloaded(len(self._queue), self.max_queue_depth)
            self._queue.append(request)
            self._cond.notify_all()
        return request.future

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------
    def _loop(self):
        while True:
            batch = None
            with self._cond:
                while self._running and not self._queue:
                    self._cond.wait()
                if not self._queue:
                    return          # stopped and fully drained
                head = self._queue[0]
                now = time.monotonic()
                flush_at = head.enqueued_at + self.max_wait_s
                if head.deadline_s is not None:
                    flush_at = min(
                        flush_at, head.enqueued_at + head.deadline_s)
                rows = sum(r.n_rows for r in self._queue
                           if r.key == head.key)
                if (self._running and rows < head.max_batch
                        and now < flush_at):
                    self._cond.wait(flush_at - now)
                    continue
                # Overload signal: queue fill when the flush decision is
                # made, before this batch is extracted — a full queue
                # reads 1.0 even when the batch will drain it entirely.
                pressure = len(self._queue) / self.max_queue_depth
                batch = self._take_batch(head.key, head.max_batch)
            self._dispatch(batch, pressure)

    def _take_batch(self, key, max_batch):
        """Remove up to ``max_batch`` rows of ``key`` requests, in order.

        The head request is always taken, even when it alone exceeds
        ``max_batch`` — the dispatcher's own query batching tiles an
        oversized request internally.
        """
        taken, kept, rows = [], [], 0
        for request in self._queue:
            if request.key == key and (
                    not taken or rows + request.n_rows <= max_batch):
                taken.append(request)
                rows += request.n_rows
            else:
                kept.append(request)
        self._queue = kept
        return taken

    def _dispatch(self, batch, pressure):
        now = time.monotonic()
        live = []
        for request in batch:
            if request.expired(now):
                request.future.set_exception(
                    DeadlineExceeded(request.waited(now),
                                     request.deadline_s))
                if self._on_expired is not None:
                    self._on_expired(request)
            else:
                live.append(request)
        if not live:
            return
        try:
            self._flush(live, pressure)
        except Exception as exc:           # pragma: no cover - defensive
            for request in live:
                if not request.future.done():
                    request.future.set_exception(exc)
        for request in live:
            # A flush that forgot a request must not strand its caller.
            if not request.future.done():
                request.future.set_exception(
                    ServeError("flush completed without answering request"))
