"""``repro.serve`` — concurrent KNN serving on the execution engine.

The serving layer turns the one-shot join library into an in-process
query service for request-driven traffic:

* :class:`IndexStore` — byte-budgeted LRU cache of prepared target
  indexes keyed by content fingerprint, seed and ``mt``;
* :class:`MicroBatcher` — bounded queue + scheduler coalescing small
  concurrent requests into planner-sized engine tiles, with typed
  :class:`~repro.errors.Overloaded` admission control and per-request
  deadlines (:class:`~repro.errors.DeadlineExceeded`);
* :class:`KNNServer` — the service facade: exact answers (identical
  to direct :func:`repro.knn_join` output), graceful degradation to a
  cheaper engine under sustained overload;
* :class:`ServerStats` — latency percentiles, batch occupancy, cache
  hit rate, rejection/expiry counts, rendered in the bench-report
  table style;
* :func:`run_open_loop` — the synthetic load generator behind
  ``python -m repro serve-bench``.

See ``docs/SERVING.md`` for the architecture and semantics.
"""

from ..errors import DeadlineExceeded, Overloaded, ServeError
from .batcher import MicroBatcher, PendingRequest, ServeFuture
from .loadgen import LoadReport, run_open_loop
from .server import KNNServer, ServeConfig, ServeResponse
from .stats import ServerStats, StatsCollector
from .store import IndexStore, IndexStoreStats

__all__ = [
    "KNNServer", "ServeConfig", "ServeResponse",
    "IndexStore", "IndexStoreStats",
    "MicroBatcher", "PendingRequest", "ServeFuture",
    "ServerStats", "StatsCollector",
    "LoadReport", "run_open_loop",
    "ServeError", "Overloaded", "DeadlineExceeded",
]
