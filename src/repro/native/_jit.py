"""numba-jitted level-2 scan kernels (import only when numba exists).

Algorithm 2 loop-for-loop over the flat CSR layout
(:class:`~repro.native.layout.FlatTargets`): one ``prange`` lane per
query, a preallocated per-query heap row, the ``bound_comparison_tol``
slack and the descending-member early ``break`` — decision for
decision the sequential reference (:func:`repro.core.filters
.point_scan`), so results and funnel counters are bit-identical to
the numpy engines.

Two bitwise-identity constraints shape the code:

* exact distances go through ``np.sqrt(np.dot(diff, diff))``, the same
  dot-product reduction the reference ``euclidean`` uses (numba lowers
  1-D float64 ``np.dot`` to the BLAS ``ddot`` numpy's reduction also
  calls; the numba-gated parity tests assert the identity holds on the
  installed BLAS);
* θ and the pruning limit are plain float64 locals updated exactly
  where :class:`~repro.core.predicates.TopKAccumulator` updates them
  (a successful heap push), the hoisted ``point_scan`` form.

The kernels are module-level functions (not closures) so numba's
on-disk cache (``cache=True``) can persist the compiled machine code
across processes; host-side wrappers live in
:mod:`repro.native.scan_numba`.

Per-query counter columns (``counters[qi, _]``)::

    0 steps  1 breaks  2 examined  3 distance_computations
    4 center_distance_computations  5 accepted
"""

from __future__ import annotations

import numpy as np
from numba import njit, prange

from ..core.filters import BOUND_COMPARISON_RTOL

__all__ = ["scan_all_full", "scan_all_partial"]

_RTOL = float(BOUND_COMPARISON_RTOL)


@njit(cache=True)
def _heap_replace_root(heap_d, heap_i, distance, index):
    """Max-heap root replacement + sift-down (``KNearestHeap``)."""
    k = heap_d.shape[0]
    heap_d[0] = distance
    heap_i[0] = index
    pos = 0
    while True:
        left = 2 * pos + 1
        right = left + 1
        largest = pos
        if left < k and heap_d[left] > heap_d[largest]:
            largest = left
        if right < k and heap_d[right] > heap_d[largest]:
            largest = right
        if largest == pos:
            break
        tmp_d = heap_d[pos]
        heap_d[pos] = heap_d[largest]
        heap_d[largest] = tmp_d
        tmp_i = heap_i[pos]
        heap_i[pos] = heap_i[largest]
        heap_i[largest] = tmp_i
        pos = largest


@njit(parallel=True, cache=True)
def scan_all_full(q_points, rows, ub_arr, cand_flat, cand_start, cand_end,
                  offsets, member_idx, member_dists, points, k,
                  out_dists, out_idx, counters):
    """Full (updating-θ) scans for a batch of queries, one lane each.

    ``out_dists``/``out_idx`` arrive preallocated as (nq, k) heaps
    (``inf`` / -1); on return each row is the query's final heap in
    heap order — the host applies ``sorted_items``.
    """
    nq = q_points.shape[0]
    dim = q_points.shape[1]
    for qi in prange(nq):
        heap_d = out_dists[qi]
        heap_i = out_idx[qi]
        qp = q_points[qi]
        ub = ub_arr[qi]
        diff = np.empty(dim, dtype=np.float64)
        count = 0
        accepted = 0
        steps = 0
        breaks = 0
        examined = 0
        dcomp = 0
        cdc = 0
        theta = ub
        for ci in range(cand_start[qi], cand_end[qi]):
            tc = cand_flat[ci]
            q2tc = rows[qi, tc]
            cdc += 1
            tol = _RTOL * (abs(q2tc) + abs(ub) + 1.0)
            limit = theta + tol
            for pos in range(offsets[tc], offsets[tc + 1]):
                steps += 1
                lbv = q2tc - member_dists[pos]
                if lbv > limit:
                    breaks += 1
                    break
                if lbv < -limit:
                    continue
                examined += 1
                t = member_idx[pos]
                for col in range(dim):
                    diff[col] = qp[col] - points[t, col]
                dist = np.sqrt(np.dot(diff, diff))
                dcomp += 1
                if dist < heap_d[0]:
                    if heap_i[0] == -1:
                        count += 1
                    _heap_replace_root(heap_d, heap_i, dist, t)
                    accepted += 1
                    if count >= k:
                        theta = min(ub, heap_d[0])
                    limit = theta + tol
        counters[qi, 0] = steps
        counters[qi, 1] = breaks
        counters[qi, 2] = examined
        counters[qi, 3] = dcomp
        counters[qi, 4] = cdc
        counters[qi, 5] = accepted


@njit(cache=True)
def _pair_sift_up(heap_d, heap_i, pos):
    """Sift-up for the (distance, index) lexicographic max-heap."""
    while pos > 0:
        parent = (pos - 1) // 2
        if (heap_d[parent] < heap_d[pos]
                or (heap_d[parent] == heap_d[pos]
                    and heap_i[parent] < heap_i[pos])):
            tmp_d = heap_d[parent]
            heap_d[parent] = heap_d[pos]
            heap_d[pos] = tmp_d
            tmp_i = heap_i[parent]
            heap_i[parent] = heap_i[pos]
            heap_i[pos] = tmp_i
            pos = parent
        else:
            break


@njit(cache=True)
def _pair_replace_root(heap_d, heap_i, size, distance, index):
    """Root replacement for the lexicographic max-heap."""
    heap_d[0] = distance
    heap_i[0] = index
    pos = 0
    while True:
        left = 2 * pos + 1
        right = left + 1
        largest = pos
        if left < size and (heap_d[left] > heap_d[largest]
                            or (heap_d[left] == heap_d[largest]
                                and heap_i[left] > heap_i[largest])):
            largest = left
        if right < size and (heap_d[right] > heap_d[largest]
                             or (heap_d[right] == heap_d[largest]
                                 and heap_i[right] > heap_i[largest])):
            largest = right
        if largest == pos:
            break
        tmp_d = heap_d[pos]
        heap_d[pos] = heap_d[largest]
        heap_d[largest] = tmp_d
        tmp_i = heap_i[pos]
        heap_i[pos] = heap_i[largest]
        heap_i[largest] = tmp_i
        pos = largest


@njit(parallel=True, cache=True)
def scan_all_partial(q_points, rows, ub_arr, cand_flat, cand_start, cand_end,
                     offsets, member_idx, member_dists, points, k,
                     out_dists, out_idx, out_counts, counters):
    """Partial (fixed-θ) scans + in-lane k-select, one lane per query.

    θ stays at the level-1 ``UB``; every survivor is offered to a
    k-bounded max-heap keyed lexicographically on ``(distance,
    index)``, whose sorted content equals
    ``heapq.nsmallest(k, pairs)`` — the reference partial filter's
    ``select_k_from_pairs``.  Each output row holds its query's
    ``out_counts[qi]`` kept pairs, ascending by (distance, index).
    """
    nq = q_points.shape[0]
    dim = q_points.shape[1]
    for qi in prange(nq):
        heap_d = out_dists[qi]
        heap_i = out_idx[qi]
        qp = q_points[qi]
        ub = ub_arr[qi]
        diff = np.empty(dim, dtype=np.float64)
        kept = 0
        steps = 0
        breaks = 0
        examined = 0
        dcomp = 0
        cdc = 0
        for ci in range(cand_start[qi], cand_end[qi]):
            tc = cand_flat[ci]
            q2tc = rows[qi, tc]
            cdc += 1
            tol = _RTOL * (abs(q2tc) + abs(ub) + 1.0)
            limit = ub + tol
            for pos in range(offsets[tc], offsets[tc + 1]):
                steps += 1
                lbv = q2tc - member_dists[pos]
                if lbv > limit:
                    breaks += 1
                    break
                if lbv < -limit:
                    continue
                examined += 1
                t = member_idx[pos]
                for col in range(dim):
                    diff[col] = qp[col] - points[t, col]
                dist = np.sqrt(np.dot(diff, diff))
                dcomp += 1
                if kept < k:
                    heap_d[kept] = dist
                    heap_i[kept] = t
                    _pair_sift_up(heap_d, heap_i, kept)
                    kept += 1
                elif (dist < heap_d[0]
                      or (dist == heap_d[0] and t < heap_i[0])):
                    _pair_replace_root(heap_d, heap_i, kept, dist, t)
        # Ascending (distance, index) — insertion sort over <= k pairs.
        for a in range(1, kept):
            dv = heap_d[a]
            iv = heap_i[a]
            b = a - 1
            while b >= 0 and (heap_d[b] > dv
                              or (heap_d[b] == dv and heap_i[b] > iv)):
                heap_d[b + 1] = heap_d[b]
                heap_i[b + 1] = heap_i[b]
                b -= 1
            heap_d[b + 1] = dv
            heap_i[b + 1] = iv
        out_counts[qi] = kept
        counters[qi, 0] = steps
        counters[qi, 1] = breaks
        counters[qi, 2] = examined
        counters[qi, 3] = dcomp
        counters[qi, 4] = cdc
        counters[qi, 5] = examined
