"""Vectorized numpy fallback of the flat level-2 scan.

This is Algorithm 2 (and Sweet KNN's weakened partial variant) over
the :class:`~repro.native.layout.FlatTargets` CSR layout, with the
top-k predicate specialized out of the accumulator protocol: the
per-query heap is a pair of preallocated flat arrays mutated by an
inline replica of :class:`repro.kselect.KNearestHeap`, and the
updating bound θ is a local float.

The vectorization is the decision-faithful pattern proven by
:mod:`repro.core.scan`: ``lb = d(q, c_t) - d(t, c_t)`` ascends along a
cluster's (descending-sorted) member list, so runs of skips are
located with ``searchsorted`` and exact distances are computed in
batched windows.  Windows are consumed in constant-θ *epochs*: θ can
only tighten on a successful heap push, so everything up to the first
distance that beats the heap root is bulk-counted, the push is applied,
and the walk resumes under the refreshed bound — the same decisions as
the sequential loop, one Python iteration per *push* instead of per
member.  Two details make the output
bit-identical (results **and** funnel counters) to the sequential
reference (:func:`repro.core.filters.point_scan`):

* window distances use the batched-matmul form
  ``sqrt((diffs[:, None, :] @ diffs[:, :, None]).ravel())``, which is
  elementwise bit-equal to the reference's per-pair
  ``sqrt(np.dot(diff, diff))`` (both reduce through the same dot
  kernel) — unlike ``einsum``, whose SIMD reduction order can differ
  in the last ulp;
* the pruning limit ``θ + tol`` is refreshed exactly when the
  accumulator state changes (a successful heap push), which is the
  hoisted form of the reference loop (see ``point_scan``) — identical
  decisions, recomputed ~k times instead of once per member.

Counter semantics match ``point_scan`` step for step: every member
position considered costs one ``steps``, a break costs one step plus
one ``breaks``, and only members that pass both bound checks count as
``examined``/``distance_computations``.
"""

from __future__ import annotations

import numpy as np

from ..core.filters import ScanTrace, bound_comparison_tol

__all__ = ["scan_query_full", "scan_query_partial", "heap_sorted_items",
           "select_k_flat"]

#: Members whose exact distances are computed per vectorised batch
#: (matches the simulated-GPU scan's window).
_WINDOW = 64


def heap_sorted_items(heap_dists, heap_idx):
    """``KNearestHeap.sorted_items`` over flat heap arrays.

    Bound-only slots (index -1) are excluded; ties keep heap-array
    order (stable argsort), exactly the reference heap's output order.
    """
    mask = heap_idx >= 0
    order = np.argsort(heap_dists[mask], kind="stable")
    return heap_dists[mask][order], heap_idx[mask][order]


def select_k_flat(dists, idx, k):
    """k smallest pairs by ``(distance, index)``, ascending.

    Bit-equal to :func:`repro.kselect.select_k_from_pairs`
    (``heapq.nsmallest`` over ``(dist, t)`` tuples): primary key
    distance, ties broken by target index.
    """
    if dists.size == 0:
        return np.empty(0), np.empty(0, dtype=np.int64)
    take = min(int(k), dists.size)
    order = np.lexsort((idx, dists))[:take]
    return dists[order], idx[order]


def _heap_replace_root(heap_dists, heap_idx, distance, index):
    """``KNearestHeap._replace_root`` over flat sequences (sift-down).

    Operates on plain Python lists (the scan's working representation:
    list item access is ~10x cheaper than numpy scalar indexing) but
    replicates the reference sift move for move, so the final layout —
    and therefore the tie order of ``sorted_items`` — is identical.
    """
    heap_dists[0] = distance
    heap_idx[0] = index
    pos = 0
    k = len(heap_dists)
    while True:
        left = 2 * pos + 1
        right = left + 1
        largest = pos
        if left < k and heap_dists[left] > heap_dists[largest]:
            largest = left
        if right < k and heap_dists[right] > heap_dists[largest]:
            largest = right
        if largest == pos:
            break
        heap_dists[pos], heap_dists[largest] = (heap_dists[largest],
                                                heap_dists[pos])
        heap_idx[pos], heap_idx[largest] = heap_idx[largest], heap_idx[pos]
        pos = largest


def scan_query_full(flat, query_point, row, cand, ub, k):
    """One query's full (updating-θ) scan over the flat layout.

    Parameters
    ----------
    flat:
        :class:`~repro.native.layout.FlatTargets`.
    query_point:
        (d,) query coordinates.
    row:
        Precomputed query-to-centre distances (``center_distance_rows``
        row; non-candidate columns may be NaN).
    cand:
        Level-1 survivor cluster ids, ascending by centre distance.
    ub:
        The query cluster's level-1 upper bound.
    k:
        Neighbours to keep.

    Returns
    -------
    (dists, idx, trace)
        Sorted neighbour arrays (ascending; ties in heap order) and
        the :class:`~repro.core.filters.ScanTrace` work counters.
    """
    trace = ScanTrace()
    k = int(k)
    ub = float(ub)
    heap_dists = [np.inf] * k
    heap_idx = [-1] * k
    count = 0
    accepted = 0
    cdc = 0
    theta = ub
    points = flat.points
    member_idx = flat.member_idx
    member_dists = flat.member_dists
    offsets = flat.offsets
    qp = query_point
    replace_root = _heap_replace_root
    window = _WINDOW

    steps = 0
    breaks = 0
    examined = 0

    for tc in cand:
        q2tc = row[tc]
        cdc += 1
        tol = bound_comparison_tol(q2tc, ub)
        start = offsets[tc]
        end = offsets[tc + 1]
        size = end - start
        if size == 0:
            continue
        lb = q2tc - member_dists[start:end]
        lb_list = lb.tolist()
        limit = theta + tol
        pos = 0
        # Window cache: exact distances are speculatively batched per
        # window (and lowered to Python floats — the walk below is
        # plain float compares) and reused across θ updates, which
        # never change a member's distance, only the bounds around it.
        win_start = 0
        win_end = 0
        w_dists = w_idx = None
        while pos < size:
            value = lb_list[pos]
            if value > limit:
                steps += 1
                breaks += 1
                break
            if value < -limit:
                # A run of skips: lb ascends and θ cannot change while
                # skipping, so every position before the first
                # lb >= -limit is skipped under the current bound.
                run_end = int(lb.searchsorted(-limit, side="left"))
                if run_end <= pos:
                    run_end = pos + 1
                steps += run_end - pos
                pos = run_end
                continue
            if pos >= win_end:
                stop = int(lb.searchsorted(limit, side="right"))
                win_start = pos
                win_end = stop if stop < pos + window else pos + window
                if win_end > size:
                    win_end = size
                w_idx_arr = member_idx[start + win_start:start + win_end]
                diffs = qp - points[w_idx_arr]
                w_dists = np.sqrt(
                    (diffs[:, None, :] @ diffs[:, :, None]).ravel()).tolist()
                w_idx = w_idx_arr.tolist()
            steps += 1
            examined += 1
            dist = w_dists[pos - win_start]
            # TopKAccumulator.offer, inlined: reject against the root,
            # replace + sift on success, tighten θ once the heap holds
            # k real neighbours.  The pruning limit is refreshed
            # exactly here — the only point it can change (the hoisted
            # point_scan form).
            if dist < heap_dists[0]:
                if heap_idx[0] == -1:
                    count += 1
                replace_root(heap_dists, heap_idx, dist,
                             w_idx[pos - win_start])
                accepted += 1
                if count >= k:
                    theta = min(ub, heap_dists[0])
                limit = theta + tol
            pos += 1

    trace.center_distance_computations = cdc
    trace.steps = steps
    trace.breaks = breaks
    trace.examined = examined
    trace.distance_computations = examined
    trace.heap_updates = accepted
    trace.accepted = accepted
    dists, idx = heap_sorted_items(
        np.asarray(heap_dists, dtype=np.float64),
        np.asarray(heap_idx, dtype=np.int64))
    return dists, idx, trace


def scan_query_partial(flat, query_point, row, cand, ub, k):
    """One query's partial (fixed-θ) scan over the flat layout.

    θ stays at the level-1 ``UB``, so the skip prefix, compute range
    and break point are pure positional thresholds and every cluster
    vectorizes completely; the survivors are k-selected afterwards
    (``select_k_flat``), exactly the reference partial filter.
    """
    trace = ScanTrace()
    ub = float(ub)
    points = flat.points
    member_idx = flat.member_idx
    member_dists = flat.member_dists
    offsets = flat.offsets
    qp = query_point
    kept_dists = []
    kept_idx = []

    for tc in cand:
        q2tc = row[tc]
        trace.center_distance_computations += 1
        tol = bound_comparison_tol(q2tc, ub)
        start = offsets[tc]
        end = offsets[tc + 1]
        size = end - start
        if size == 0:
            continue
        lb = q2tc - member_dists[start:end]
        limit = ub + tol
        skip_end = int(np.searchsorted(lb, -limit, side="left"))
        stop = int(np.searchsorted(lb, limit, side="right"))
        trace.steps += stop
        if stop < size:
            trace.steps += 1
            trace.breaks += 1
        survivors = stop - skip_end
        if survivors > 0:
            trace.examined += survivors
            trace.distance_computations += survivors
            trace.accepted += survivors
            w_idx = member_idx[start + skip_end:start + stop]
            diffs = qp - points[w_idx]
            kept_dists.append(np.sqrt(
                (diffs[:, None, :] @ diffs[:, :, None]).ravel()))
            kept_idx.append(w_idx)

    if kept_dists:
        all_dists = np.concatenate(kept_dists)
        all_idx = np.concatenate(kept_idx)
    else:
        all_dists = np.empty(0, dtype=np.float64)
        all_idx = np.empty(0, dtype=np.int64)
    dists, idx = select_k_flat(all_dists, all_idx, k)
    return dists, idx, trace
