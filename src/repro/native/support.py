"""Optional-dependency plumbing for the native tier.

numba is an *optional* dependency: the ``*-flat`` engines never touch
it, the ``*-native`` engines require it and fail fast through the
engine registry's availability checks
(:func:`repro.engine.missing_requirements`) when it is absent.  This
module is the single place that answers "is numba importable?" and
keeps the per-process JIT-compilation ledger the bench harness reads
(so warm-vs-cold JIT never pollutes ``query_time_s``).
"""

from __future__ import annotations

import importlib.util
import threading

__all__ = ["numba_available", "native_compile_seconds",
           "record_compile_seconds", "warm_up_kernels",
           "NUMBA_INSTALL_HINT"]

#: The one-line remedy surfaced by the fail-fast UX (CLI exit 2,
#: ``EngineUnavailableError``, ``repro plan``).
NUMBA_INSTALL_HINT = ("pip install numba  # or use the %s engine, the "
                      "always-available numpy fallback")

_lock = threading.Lock()
_availability = None
_compile_seconds = 0.0


def numba_available():
    """True when numba is importable in this process (cached)."""
    global _availability
    if _availability is None:
        _availability = importlib.util.find_spec("numba") is not None
    return bool(_availability)


def record_compile_seconds(seconds):
    """Add JIT-compilation wall time to the per-process ledger."""
    global _compile_seconds
    with _lock:
        _compile_seconds += float(seconds)


def native_compile_seconds():
    """Total wall seconds this process spent compiling native kernels.

    Monotone per process; the native engine snapshots it around a join
    and reports the delta in ``stats.extra["native_compile_s"]`` so
    timing harnesses can subtract compilation from ``query_time_s``.
    """
    with _lock:
        return _compile_seconds


def warm_up_kernels(dim=2):
    """Force-compile the jitted kernels for ``dim``-dimensional points.

    Returns the wall seconds the warm-up took (0.0 when numba is
    absent).  The time is also added to the compile ledger.  Serving
    and benchmark paths call this before the measured section; numba's
    on-disk cache (``cache=True``) makes repeat process starts cheap.
    """
    if not numba_available():
        return 0.0
    from . import scan_numba

    return scan_numba.warm_up(dim)
