"""Flat (CSR-packed) view of a clustered target set.

The level-2 kernels — numpy-vectorized and numba-jitted alike — want
the per-cluster member lists of a
:class:`~repro.core.clustering.ClusteredSet` as three flat arrays
(member indices, member distances, cluster offsets) instead of a list
of ragged ndarrays: one contiguous layout both tiers index with
``offsets[tc]:offsets[tc + 1]``, and the only container shape numba
can compile over.

Packing is O(n) and allocates ~12 bytes per target point, so it is
memoized per :class:`ClusteredSet` *object* (validated by a weak
reference, the idiom of :mod:`repro.index.fingerprint`): a prepared
plan queried many times — or sliced into query batches/shards — packs
once per process.  The memo treats the clustered set as immutable,
the contract every prepared plan already imposes.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass

import numpy as np

__all__ = ["FlatTargets", "flat_targets", "cached_layouts", "clear_memo"]

_memo = {}            # id(ClusteredSet) -> (weakref, FlatTargets)
_memo_lock = threading.Lock()


@dataclass(frozen=True)
class FlatTargets:
    """CSR layout of a target clustering's member lists.

    Attributes
    ----------
    points:
        (n, d) float64 C-contiguous target matrix (shared with the
        clustered set when already canonical).
    member_idx:
        (n,) int64 concatenation of every cluster's member indices, in
        the clustered set's (descending member-distance) order.
    member_dists:
        (n,) float64 member-to-centre distances, aligned with
        ``member_idx``.
    offsets:
        (m + 1,) int64 row pointer: cluster ``tc``'s members live at
        ``[offsets[tc], offsets[tc + 1])``.
    """

    points: np.ndarray
    member_idx: np.ndarray
    member_dists: np.ndarray
    offsets: np.ndarray

    @property
    def n_clusters(self):
        return int(self.offsets.shape[0] - 1)

    def sizes(self):
        return np.diff(self.offsets)


def _pack(clustered):
    sizes = np.asarray([m.size for m in clustered.members], dtype=np.int64)
    offsets = np.zeros(sizes.size + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    if sizes.sum():
        member_idx = np.ascontiguousarray(
            np.concatenate(clustered.members).astype(np.int64, copy=False))
        member_dists = np.ascontiguousarray(
            np.concatenate(clustered.member_dists).astype(
                np.float64, copy=False))
    else:
        member_idx = np.empty(0, dtype=np.int64)
        member_dists = np.empty(0, dtype=np.float64)
    points = np.ascontiguousarray(
        np.asarray(clustered.points, dtype=np.float64))
    return FlatTargets(points=points, member_idx=member_idx,
                       member_dists=member_dists, offsets=offsets)


def flat_targets(clustered):
    """The memoized :class:`FlatTargets` of a clustered target set.

    Repeat calls with the same :class:`ClusteredSet` object return the
    cached layout without touching the member lists (O(1)); the entry
    is dropped when the clustered set is garbage collected, so a
    recycled ``id`` can never alias a stale layout.
    """
    key = id(clustered)
    with _memo_lock:
        entry = _memo.get(key)
        if entry is not None and entry[0]() is clustered:
            return entry[1]
    flat = _pack(clustered)
    try:
        ref = weakref.ref(clustered,
                          lambda _ref, _key=key: _memo.pop(_key, None))
    except TypeError:
        return flat
    with _memo_lock:
        _memo[key] = (ref, flat)
    return flat


def cached_layouts():
    """Number of live memo entries (tests, debugging)."""
    with _memo_lock:
        return len(_memo)


def clear_memo():
    """Drop every memoized layout (tests)."""
    with _memo_lock:
        _memo.clear()
