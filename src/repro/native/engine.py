"""The native-tier KNN join driver and its engine registrations.

:func:`native_knn_join` is :func:`repro.core.ti_knn.ti_knn_join` with
the level-2 scan swapped for the flat-layout kernels: the same Step-1
plan, the same level-1 filter, the same per-cluster
``center_distance_rows`` batching and the same counter accounting —
only the member scan and k-select run over the
:class:`~repro.native.layout.FlatTargets` CSR pack, either as the
vectorized numpy fallback (``tier="flat"``) or as the numba kernels
(``tier="native"``), which process every query of the join in one
``prange`` launch.

Four engines register (see :mod:`repro.engine.builtin`):

======================  =======  =========  ==================
name                    filter   kernels    availability
======================  =======  =========  ==================
``ti-flat``             full     numpy      always
``sweet-flat``          partial  numpy      always
``ti-native``           full     numba JIT  requires ``numba``
``sweet-native``        partial  numba JIT  requires ``numba``
======================  =======  =========  ==================

All four declare ``supports_prepared_index``, so they compose with
query batching and the process/thread shard pools exactly like
``ti-cpu`` (shard workers resolve engines by name); results and
funnel counters are bit-identical to the reference engines, which the
always-run parity suite (tests/native/) asserts for the flat tier and
the numba-gated suite for the native tier.
"""

from __future__ import annotations

import numpy as np

from ..engine.base import EngineCaps, EngineSpec
from ..errors import EngineUnavailableError
from ..core.filters import center_distance_rows
from ..core.result import JoinStats, KNNResult
from ..core.ti_knn import prepare_clusters
from .layout import flat_targets
from .scan_numpy import heap_sorted_items, scan_query_full, scan_query_partial
from .support import (NUMBA_INSTALL_HINT, native_compile_seconds,
                      numba_available)

__all__ = ["native_knn_join", "ENGINES"]


def native_knn_join(queries, targets, k, rng, mq=None, mt=None, plan=None,
                    filter_strength="full", query_subset=None,
                    account_prepare=True, tier="flat"):
    """TI KNN join over the flat kernel tier.

    Parameters are those of :func:`~repro.core.ti_knn.ti_knn_join`
    plus ``tier``: ``"flat"`` (vectorized numpy, always available) or
    ``"native"`` (numba JIT; raises
    :class:`~repro.errors.EngineUnavailableError` when numba is
    absent).  Results and work counters are bit-identical to the
    reference join at the same ``filter_strength``.
    """
    queries = np.asarray(queries, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    k = int(k)
    if k <= 0:
        raise ValueError("k must be positive")
    if k > len(targets):
        raise ValueError("k cannot exceed the number of target points")
    if filter_strength not in ("full", "partial"):
        raise ValueError("filter_strength must be 'full' or 'partial'")
    if tier not in ("flat", "native"):
        raise ValueError("tier must be 'flat' or 'native'")
    engine_label = "%s-%s" % ("ti" if filter_strength == "full" else "sweet",
                              tier)
    if tier == "native" and not numba_available():
        fallback = engine_label.replace("-native", "-flat")
        raise EngineUnavailableError(engine_label, ("numba",),
                                     hint=NUMBA_INSTALL_HINT % fallback)

    if plan is None:
        plan = prepare_clusters(queries, targets, rng, mq=mq, mt=mt)
    ubs_all, candidates = plan.level1(k)

    n_q = len(queries)
    if query_subset is None:
        active = np.arange(n_q)
    else:
        active = np.asarray(query_subset, dtype=np.int64)
    active_mask = np.zeros(n_q, dtype=bool)
    active_mask[active] = True
    local_row = np.full(n_q, -1, dtype=np.int64)
    local_row[active] = np.arange(len(active))

    cq, ct = plan.query_clusters, plan.target_clusters
    stats = JoinStats(
        n_queries=len(active), n_targets=len(targets), k=k,
        dim=queries.shape[1], mq=plan.mq, mt=plan.mt,
        init_distance_computations=(
            (cq.init_distance_computations + ct.init_distance_computations)
            if account_prepare else 0),
        candidate_cluster_pairs=(
            int(sum(c.size for c in candidates)) if account_prepare else 0),
    )
    target_sizes = np.asarray(ct.cluster_sizes(), dtype=np.int64)
    flat = flat_targets(ct)
    full = filter_strength == "full"
    compile_before = native_compile_seconds()

    per_query = [None] * len(active)
    if tier == "flat":
        _run_flat(queries, k, cq, ct, flat, ubs_all, candidates, active_mask,
                  local_row, target_sizes, full, stats, per_query)
    else:
        _run_native(queries, k, cq, ct, flat, ubs_all, candidates,
                    active_mask, local_row, target_sizes, full, stats,
                    per_query)

    stats.extra["kernel_tier"] = "native" if tier == "native" else "numpy-flat"
    if tier == "native" and account_prepare:
        stats.extra["native_compile_s"] = round(
            native_compile_seconds() - compile_before, 6)

    distances, indices = KNNResult.pack(per_query, k)
    return KNNResult(distances=distances, indices=indices, stats=stats,
                     method="%s/%s" % (engine_label, filter_strength))


def _account(stats, dcomp, cdc, examined, updates, accepted):
    stats.level2_distance_computations += dcomp
    stats.center_distance_computations += cdc
    stats.examined_points += examined
    stats.heap_updates += updates
    stats.predicate_accepted_pairs += accepted


def _run_flat(queries, k, cq, ct, flat, ubs_all, candidates, active_mask,
              local_row, target_sizes, full, stats, per_query):
    """Per-query vectorized scans (the numpy fallback tier)."""
    for qc in range(cq.n_clusters):
        ub = ubs_all[qc]
        cand = candidates[qc]
        members = cq.members[qc]
        scanned = members[active_mask[members]] if members.size else members
        if scanned.size == 0:
            continue
        cluster_pairs = int(target_sizes[cand].sum()) if cand.size else 0
        rows = center_distance_rows(queries[scanned], ct, cand)
        for local, q in enumerate(scanned):
            stats.level1_survivor_pairs += cluster_pairs
            scan = scan_query_full if full else scan_query_partial
            dists, idx, trace = scan(flat, queries[q], rows[local], cand,
                                     ub, k)
            per_query[local_row[q]] = (dists, idx)
            _account(stats, trace.distance_computations,
                     trace.center_distance_computations, trace.examined,
                     trace.heap_updates, trace.accepted)


def _run_native(queries, k, cq, ct, flat, ubs_all, candidates, active_mask,
                local_row, target_sizes, full, stats, per_query):
    """One prange launch over every active query (the numba tier)."""
    from . import scan_numba
    from .scan_numba import (COL_ACCEPTED, COL_CDC, COL_DCOMP, COL_EXAMINED)

    q_parts = []
    row_parts = []
    cand_parts = []
    ub_vals = []
    seg_start = []
    seg_end = []
    pairs_per_query = []
    scanned_all = []
    cand_off = 0
    for qc in range(cq.n_clusters):
        cand = candidates[qc]
        members = cq.members[qc]
        scanned = members[active_mask[members]] if members.size else members
        if scanned.size == 0:
            continue
        cluster_pairs = int(target_sizes[cand].sum()) if cand.size else 0
        rows = center_distance_rows(queries[scanned], ct, cand)
        q_parts.append(queries[scanned])
        row_parts.append(rows)
        cand_parts.append(np.asarray(cand, dtype=np.int64))
        n_scanned = int(scanned.size)
        ub_vals.extend([float(ubs_all[qc])] * n_scanned)
        seg_start.extend([cand_off] * n_scanned)
        seg_end.extend([cand_off + int(cand.size)] * n_scanned)
        pairs_per_query.extend([cluster_pairs] * n_scanned)
        scanned_all.extend(int(q) for q in scanned)
        cand_off += int(cand.size)
    if not scanned_all:
        return

    q_points = np.ascontiguousarray(np.vstack(q_parts))
    rows_all = np.ascontiguousarray(np.vstack(row_parts))
    if cand_off:
        cand_flat = np.concatenate(cand_parts)
    else:
        cand_flat = np.empty(0, dtype=np.int64)
    ub_arr = np.asarray(ub_vals, dtype=np.float64)
    cand_start = np.asarray(seg_start, dtype=np.int64)
    cand_end = np.asarray(seg_end, dtype=np.int64)

    scan_numba.warm_up(queries.shape[1])
    if full:
        out_d, out_i, counters = scan_numba.run_full(
            flat, q_points, rows_all, ub_arr, cand_flat, cand_start,
            cand_end, k)
    else:
        out_d, out_i, out_counts, counters = scan_numba.run_partial(
            flat, q_points, rows_all, ub_arr, cand_flat, cand_start,
            cand_end, k)

    for i, q in enumerate(scanned_all):
        stats.level1_survivor_pairs += pairs_per_query[i]
        accepted = int(counters[i, COL_ACCEPTED])
        _account(stats, int(counters[i, COL_DCOMP]),
                 int(counters[i, COL_CDC]), int(counters[i, COL_EXAMINED]),
                 accepted if full else 0, accepted)
        if full:
            per_query[local_row[q]] = heap_sorted_items(out_d[i], out_i[i])
        else:
            kept = int(out_counts[i])
            per_query[local_row[q]] = (out_d[i, :kept], out_i[i, :kept])


# ----------------------------------------------------------------------
# Engine registration (see repro.engine.builtin)
# ----------------------------------------------------------------------
def _make_run(tier, strength):
    def _run(queries, targets, k, ctx, **options):
        options.setdefault("filter_strength", strength)
        return native_knn_join(queries, targets, k, ctx.rng, plan=ctx.plan,
                               query_subset=ctx.query_subset,
                               account_prepare=ctx.account_prepare,
                               tier=tier, **options)
    return _run


# Shared TI-family shape exponents; ref_s separates the tiers (flat is
# ~3x ti-cpu, native ~10x flat per BENCH_native_kernels.json) and the
# partial filter both runs cheaper and leans less on tight clusters.
_TI_EXPONENTS = (("log_q", 1.0), ("log_t", 0.3), ("log_k", 0.3),
                 ("log_d", 0.85))
_TI_FLAT_CAPS = EngineCaps(
    uses_seed=True, supports_prepared_index=True,
    cost_hints=(("ref_s", 1.0), ("clusterability", -1.5)) + _TI_EXPONENTS)
_SWEET_FLAT_CAPS = EngineCaps(
    uses_seed=True, supports_prepared_index=True,
    cost_hints=(("ref_s", 0.8), ("clusterability", -1.0)) + _TI_EXPONENTS)
_TI_NATIVE_CAPS = EngineCaps(
    uses_seed=True, supports_prepared_index=True, requires=("numba",),
    cost_hints=(("ref_s", 0.12), ("clusterability", -1.5)) + _TI_EXPONENTS)
_SWEET_NATIVE_CAPS = EngineCaps(
    uses_seed=True, supports_prepared_index=True, requires=("numba",),
    cost_hints=(("ref_s", 0.09), ("clusterability", -1.0)) + _TI_EXPONENTS)

ENGINES = (
    EngineSpec(
        name="ti-flat",
        run=_make_run("flat", "full"),
        caps=_TI_FLAT_CAPS,
        description="flat-layout vectorized TI KNN (full filter; numpy "
                    "fallback of the native tier)"),
    EngineSpec(
        name="sweet-flat",
        run=_make_run("flat", "partial"),
        caps=_SWEET_FLAT_CAPS,
        description="flat-layout vectorized Sweet KNN partial filter "
                    "(numpy fallback of the native tier)"),
    EngineSpec(
        name="ti-native",
        run=_make_run("native", "full"),
        caps=_TI_NATIVE_CAPS,
        description="numba-jitted TI KNN (full filter; requires numba)"),
    EngineSpec(
        name="sweet-native",
        run=_make_run("native", "partial"),
        caps=_SWEET_NATIVE_CAPS,
        description="numba-jitted Sweet KNN partial filter (requires "
                    "numba)"),
)
