"""Native-compiled kernel tier for the level-2 scan and k-select.

PR 4 vectorized the level-1 filter; this package does the same for the
remaining hot path — the level-2 member scan (Algorithm 2) and the
k-selection — in two layers over one shared flat data layout
(:mod:`repro.native.layout` packs the per-cluster member lists into
CSR arrays):

* :mod:`repro.native.scan_numpy` — a pure-numpy vectorized
  restructuring of the scan: skip runs located with ``searchsorted``,
  exact distances computed in batched windows that are then *walked*
  so the updating bound keeps Algorithm 2's exact semantics (the
  proven pattern of :mod:`repro.core.scan`, minus the lane logging).
  Always available; registered as the ``ti-flat`` / ``sweet-flat``
  engines.
* :mod:`repro.native._jit` — the same loops compiled by numba
  (``@njit(parallel=True, cache=True)``, one ``prange`` lane per
  query).  Optional dependency; registered as the ``ti-native`` /
  ``sweet-native`` engines, which fail fast with an install hint when
  numba is absent (see ``EngineCaps.requires``).

Both tiers make decision-for-decision the same choices as the
sequential reference (:func:`repro.core.filters.point_scan`), so
results **and** the funnel counters are bit-identical to the
``ti-cpu`` engine — the contract docs/NATIVE.md spells out and
tests/native/ asserts.
"""

from __future__ import annotations

from .engine import ENGINES, native_knn_join
from .layout import FlatTargets, flat_targets
from .support import (native_compile_seconds, numba_available,
                     warm_up_kernels)

__all__ = [
    "ENGINES", "native_knn_join",
    "FlatTargets", "flat_targets",
    "numba_available", "native_compile_seconds", "warm_up_kernels",
]
