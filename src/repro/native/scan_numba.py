"""Host-side wrappers around the jitted kernels of :mod:`._jit`.

Importing this module requires numba (it imports :mod:`._jit`, which
imports ``numba`` at module level so ``cache=True`` sees module-level
functions); go through :func:`repro.native.support.numba_available`
first.  The wrappers own the batch-buffer allocation and the per-dim
warm-up/compile-time ledger.

Counter columns of the (nq, 6) ``counters`` matrix both kernels fill::

    COL_STEPS, COL_BREAKS, COL_EXAMINED, COL_DCOMP, COL_CDC,
    COL_ACCEPTED
"""

from __future__ import annotations

import time

import numpy as np

from .support import record_compile_seconds

__all__ = ["run_full", "run_partial", "warm_up",
           "COL_STEPS", "COL_BREAKS", "COL_EXAMINED", "COL_DCOMP",
           "COL_CDC", "COL_ACCEPTED"]

COL_STEPS = 0
COL_BREAKS = 1
COL_EXAMINED = 2
COL_DCOMP = 3
COL_CDC = 4
COL_ACCEPTED = 5

_warmed_dims = set()


def warm_up(dim=2):
    """Compile (or cache-load) both kernels for ``dim``-d points.

    Returns the wall seconds this call spent (0.0 when ``dim`` is
    already warm in this process); the time is added to the compile
    ledger :func:`repro.native.support.native_compile_seconds` reads.
    """
    dim = int(dim)
    if dim in _warmed_dims:
        return 0.0
    started = time.perf_counter()
    from . import _jit

    points = np.vstack([np.ones(dim), np.zeros(dim)]).astype(np.float64)
    member_idx = np.array([0, 1], dtype=np.int64)
    member_dists = np.array([float(np.sqrt(dim)), 0.0], dtype=np.float64)
    offsets = np.array([0, 2], dtype=np.int64)
    q_points = np.zeros((1, dim), dtype=np.float64)
    rows = np.zeros((1, 1), dtype=np.float64)
    ub_arr = np.array([10.0 + dim], dtype=np.float64)
    cand_flat = np.array([0], dtype=np.int64)
    cand_start = np.array([0], dtype=np.int64)
    cand_end = np.array([1], dtype=np.int64)
    out_d = np.full((1, 1), np.inf, dtype=np.float64)
    out_i = np.full((1, 1), -1, dtype=np.int64)
    counters = np.zeros((1, 6), dtype=np.int64)
    _jit.scan_all_full(q_points, rows, ub_arr, cand_flat, cand_start,
                       cand_end, offsets, member_idx, member_dists, points,
                       1, out_d, out_i, counters)
    out_d[:] = np.inf
    out_i[:] = -1
    out_counts = np.zeros(1, dtype=np.int64)
    _jit.scan_all_partial(q_points, rows, ub_arr, cand_flat, cand_start,
                          cand_end, offsets, member_idx, member_dists,
                          points, 1, out_d, out_i, out_counts, counters)
    elapsed = time.perf_counter() - started
    record_compile_seconds(elapsed)
    _warmed_dims.add(dim)
    return elapsed


def run_full(flat, q_points, rows, ub_arr, cand_flat, cand_start, cand_end,
             k):
    """Full scans for a query batch; returns (heap_d, heap_i, counters).

    Each returned heap row is in heap order — apply
    :func:`repro.native.scan_numpy.heap_sorted_items` per query.
    """
    from . import _jit

    nq = q_points.shape[0]
    k = int(k)
    out_d = np.full((nq, k), np.inf, dtype=np.float64)
    out_i = np.full((nq, k), -1, dtype=np.int64)
    counters = np.zeros((nq, 6), dtype=np.int64)
    _jit.scan_all_full(q_points, rows, ub_arr, cand_flat, cand_start,
                       cand_end, flat.offsets, flat.member_idx,
                       flat.member_dists, flat.points, k, out_d, out_i,
                       counters)
    return out_d, out_i, counters


def run_partial(flat, q_points, rows, ub_arr, cand_flat, cand_start,
                cand_end, k):
    """Partial scans + in-lane k-select; returns
    (dists, idx, counts, counters) with each row's first ``counts[qi]``
    entries ascending by (distance, index)."""
    from . import _jit

    nq = q_points.shape[0]
    k = int(k)
    out_d = np.full((nq, k), np.inf, dtype=np.float64)
    out_i = np.full((nq, k), -1, dtype=np.int64)
    out_counts = np.zeros(nq, dtype=np.int64)
    counters = np.zeros((nq, 6), dtype=np.int64)
    _jit.scan_all_partial(q_points, rows, ub_arr, cand_flat, cand_start,
                          cand_end, flat.offsets, flat.member_idx,
                          flat.member_dists, flat.points, k, out_d, out_i,
                          out_counts, counters)
    return out_d, out_i, out_counts, counters
