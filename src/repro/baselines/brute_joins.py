"""Exact brute-force references for the predicate joins.

The correctness oracles for :mod:`repro.core.joins`: all pairwise
distances are computed directly (same sqrt-of-squared-diffs form as
:mod:`repro.baselines.brute_force`, so the TI engines match them
bit-for-bit in float64) and the predicate is applied to the full
distance matrix.  Registered as the ``range-join-brute`` and
``rknn-brute`` engines so the CLI's ``--check`` and ``compare`` paths
treat them like any other method.
"""

from __future__ import annotations

import numpy as np

from ..core.result import JoinStats, RangeResult
from ..engine.base import EngineCaps, EngineSpec

__all__ = ["brute_range_join", "brute_reverse_knn", "ENGINES"]

_CHUNK_ROWS = 512


def _distance_block(queries, targets, start, stop):
    diff = queries[start:stop, None, :] - targets[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def _pack_rows(block, thresholds, row_offset, rows_out, skip_self=False):
    """Append each block row's accepted (distance, index) pairs, sorted."""
    for local in range(block.shape[0]):
        dists = block[local]
        keep = dists <= thresholds
        if skip_self:
            q = row_offset + local
            if q < keep.shape[0]:
                keep = keep.copy()
                keep[q] = False
        idx = np.flatnonzero(keep)
        d = dists[idx]
        order = np.lexsort((idx, d))
        rows_out.append((d[order], idx[order]))


def brute_range_join(queries, targets, eps, skip_self=False):
    """Exact ε-range join by exhaustive distance computation.

    ``skip_self=True`` drops the diagonal ``(i, i)`` pairs — the
    reference for the ``self-join-eps`` engine (pass the same array as
    queries and targets).
    """
    queries = np.asarray(queries, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    eps = float(eps)
    if not np.isfinite(eps) or eps < 0:
        raise ValueError("eps must be a non-negative finite float")

    n_q = len(queries)
    n_t, dim = targets.shape
    chunk = max(1, min(_CHUNK_ROWS, 2 ** 26 // max(1, n_t * dim)))
    rows_out = []
    for start in range(0, n_q, chunk):
        stop = min(start + chunk, n_q)
        block = _distance_block(queries, targets, start, stop)
        _pack_rows(block, eps, start, rows_out, skip_self=skip_self)
    accepted = sum(len(d) for d, _ in rows_out)

    stats = JoinStats(
        n_queries=n_q, n_targets=n_t, dim=dim,
        level2_distance_computations=n_q * n_t,
        predicate_accepted_pairs=accepted,
        extra={"predicate": "eps-range", "eps": eps},
    )
    method = "self-join-brute" if skip_self else "range-join-brute"
    return RangeResult.from_rows(rows_out, stats=stats, method=method)


def brute_reverse_knn(queries, targets, k):
    """Exact reverse-KNN join by exhaustive distance computation.

    ``kdist(t)`` is t's k-th smallest distance to the *other* targets
    (diagonal masked to ``inf``); a pair ``(q, t)`` is accepted when
    ``d(q, t) <= kdist(t)``.
    """
    queries = np.asarray(queries, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    k = int(k)
    n_t, dim = targets.shape
    if not 0 < k < n_t:
        raise ValueError(
            "reverse-KNN needs 0 < k < |T| (k=%d, |T|=%d)" % (k, n_t))

    kdist = np.empty(n_t, dtype=np.float64)
    chunk = max(1, min(_CHUNK_ROWS, 2 ** 26 // max(1, n_t * dim)))
    for start in range(0, n_t, chunk):
        stop = min(start + chunk, n_t)
        block = _distance_block(targets, targets, start, stop)
        block[np.arange(stop - start), np.arange(start, stop)] = np.inf
        kdist[start:stop] = np.partition(block, k - 1, axis=1)[:, k - 1]

    n_q = len(queries)
    rows_out = []
    for start in range(0, n_q, chunk):
        stop = min(start + chunk, n_q)
        block = _distance_block(queries, targets, start, stop)
        _pack_rows(block, kdist, start, rows_out)
    accepted = sum(len(d) for d, _ in rows_out)

    stats = JoinStats(
        n_queries=n_q, n_targets=n_t, k=k, dim=dim,
        level2_distance_computations=n_q * n_t + n_t * n_t,
        predicate_accepted_pairs=accepted,
        extra={"predicate": "rknn"},
    )
    return RangeResult.from_rows(rows_out, stats=stats, method="rknn-brute")


# ----------------------------------------------------------------------
# Engine registration (see repro.engine)
# ----------------------------------------------------------------------
_RANGE_CAPS = EngineCaps(result_kind="range")


def _run_range(queries, targets, k, ctx, eps=None, **options):
    return brute_range_join(queries, targets, eps, **options)


def _run_rknn(queries, targets, k, ctx, **options):
    return brute_reverse_knn(queries, targets, k, **options)


ENGINES = (
    EngineSpec(
        name="range-join-brute",
        run=_run_range,
        caps=_RANGE_CAPS,
        description="exact brute-force ε-range join (oracle; "
                    "skip_self=True for the self-join)",
        required_options=("eps",),
    ),
    EngineSpec(
        name="rknn-brute",
        run=_run_rknn,
        caps=_RANGE_CAPS,
        description="exact brute-force reverse-KNN join (oracle)",
    ),
)
