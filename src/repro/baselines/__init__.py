"""Baselines: exact brute force, the CUBLAS-style GPU KNN, KD-tree,
and the brute-force predicate-join oracles."""

from .brute_force import brute_force_knn
from .brute_joins import brute_range_join, brute_reverse_knn
from .cublas_knn import cublas_knn, plan_partitions
from .kdtree import KDTree, kdtree_knn

__all__ = ["brute_force_knn", "brute_range_join", "brute_reverse_knn",
           "cublas_knn", "plan_partitions", "KDTree", "kdtree_knn"]
