"""Baselines: exact brute force, the CUBLAS-style GPU KNN, KD-tree."""

from .brute_force import brute_force_knn
from .cublas_knn import cublas_knn, plan_partitions
from .kdtree import KDTree, kdtree_knn

__all__ = ["brute_force_knn", "cublas_knn", "plan_partitions", "KDTree",
           "kdtree_knn"]
