"""KD-tree KNN baseline (the paper's other algorithmic family).

The paper's related work contrasts TI-based filtering with KD-tree
methods [8]-[10]; this host-side implementation rounds out the
baseline set for the ablation benches (KD-trees degrade with
dimensionality, which is visible on the high-dimensional stand-ins).

Implemented from scratch (median-split, bounded best-first descent)
rather than delegating to scipy, so its work counters are comparable
with the TI implementations.
"""

from __future__ import annotations

import numpy as np

from ..core.result import JoinStats, KNNResult
from ..engine.base import EngineCaps, EngineSpec
from ..kselect import KNearestHeap

__all__ = ["KDTree", "kdtree_knn", "ENGINE"]

_LEAF_SIZE = 16


class _Node:
    __slots__ = ("axis", "threshold", "left", "right", "indices")

    def __init__(self, axis=-1, threshold=0.0, left=None, right=None,
                 indices=None):
        self.axis = axis
        self.threshold = threshold
        self.left = left
        self.right = right
        self.indices = indices

    @property
    def is_leaf(self):
        return self.indices is not None


class KDTree:
    """A median-split KD-tree over an (n, d) point set."""

    def __init__(self, points, leaf_size=_LEAF_SIZE):
        self.points = np.asarray(points, dtype=np.float64)
        self.leaf_size = int(leaf_size)
        if self.points.ndim != 2 or self.points.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        self.distance_computations = 0
        self.nodes = 0
        self.root = self._build(np.arange(self.points.shape[0]), depth=0)

    def _build(self, indices, depth):
        self.nodes += 1
        if indices.size <= self.leaf_size:
            return _Node(indices=indices)
        axis = depth % self.points.shape[1]
        values = self.points[indices, axis]
        order = np.argsort(values, kind="stable")
        indices = indices[order]
        mid = indices.size // 2
        threshold = values[order[mid]]
        return _Node(axis=axis, threshold=float(threshold),
                     left=self._build(indices[:mid], depth + 1),
                     right=self._build(indices[mid:], depth + 1))

    def query(self, point, k):
        """k nearest neighbours of ``point``: ``(distances, indices)``."""
        point = np.asarray(point, dtype=np.float64)
        heap = KNearestHeap(int(k))
        self._descend(self.root, point, heap)
        return heap.sorted_items()

    def _descend(self, node, point, heap):
        if node.is_leaf:
            diffs = self.points[node.indices] - point
            dists = np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
            self.distance_computations += int(dists.size)
            for dist, idx in zip(dists, node.indices):
                heap.push(dist, idx)
            return
        delta = point[node.axis] - node.threshold
        near, far = ((node.left, node.right) if delta < 0
                     else (node.right, node.left))
        self._descend(near, point, heap)
        # Prune the far side when the splitting plane is beyond the
        # current k-th distance (or the heap is not yet full).
        if not heap.full or abs(delta) < heap.max_distance:
            self._descend(far, point, heap)


def kdtree_knn(queries, targets, k, leaf_size=_LEAF_SIZE):
    """KNN join through a KD-tree; host-side exact baseline."""
    queries = np.asarray(queries, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    k = int(k)
    if k <= 0:
        raise ValueError("k must be positive")
    if k > len(targets):
        raise ValueError("k cannot exceed the number of target points")

    tree = KDTree(targets, leaf_size=leaf_size)
    results = [tree.query(q, k) for q in queries]
    distances, indices = KNNResult.pack(results, k)
    stats = JoinStats(
        n_queries=len(queries), n_targets=len(targets), k=k,
        dim=queries.shape[1],
        level2_distance_computations=tree.distance_computations,
        predicate_accepted_pairs=len(queries) * k,
        extra={"tree_nodes": tree.nodes},
    )
    return KNNResult(distances=distances, indices=indices, stats=stats,
                     method="kdtree-cpu")


# ----------------------------------------------------------------------
# Engine registration (see repro.engine)
# ----------------------------------------------------------------------
def _run_engine(queries, targets, k, ctx, **options):
    return kdtree_knn(queries, targets, k, **options)


ENGINE = EngineSpec(
    name="kdtree",
    run=_run_engine,
    caps=EngineCaps(cost_hints=(
        # Near-log in |T| at low d, degenerating toward a scan as d
        # grows (the log_d exponent encodes the curse).
        ("ref_s", 2.0), ("log_q", 1.0), ("log_t", 0.4), ("log_k", 0.4),
        ("log_d", 0.6), ("clusterability", -0.3))),
    description="KD-tree KNN baseline on the host",
)
