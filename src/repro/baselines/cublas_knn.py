"""The CUBLAS-style brute-force GPU baseline (Garcia et al. [13], [15]).

This is the paper's comparison baseline (Section V-A): a two-stage GPU
scheme —

1. a CUBLAS matrix-multiplication kernel computes **all** |Q| x |T|
   distances and stores them in global memory;
2. a second kernel, one thread per query, selects the k smallest.

If the distance matrix does not fit in device memory, the query set is
partitioned into groups processed one by one (e.g. 175 groups for
3DNet on the K20c), which the paper identifies as the baseline's main
weakness on the large datasets: low per-group occupancy and tremendous
memory traffic.

On the simulator the GEMM stage is accounted analytically (it is
perfectly regular by construction — that is the whole point of the
baseline) with CUBLAS-grade FMA throughput, full coalescing, and every
distance stored to and re-read from global memory.  The selection
stage is executed warp-vectorised per query thread with a bounded
max-heap, whose data-dependent update pattern gives it realistic (not
perfect) regularity.  Numeric results come from numpy and are exact.
"""

from __future__ import annotations

import numpy as np

from ..engine.base import EngineCaps, EngineSpec
from ..engine.planner import dense_partition_rows, partition_ranges
from ..errors import OutOfDeviceMemory
from ..gpu.costmodel import default_cost_model
from ..gpu.device import tesla_k20c
from ..gpu.executor import WarpExecutor
from ..gpu.kernel import DEFAULT_BLOCK_SIZE, LaunchConfig, makespan
from ..gpu.memory import GlobalMemory
from ..gpu.profiler import KernelProfile, PipelineProfile
from ..core.result import JoinStats, KNNResult

__all__ = ["cublas_knn", "plan_partitions", "ENGINE"]

_FLOAT = 4  # device floats are 32-bit


def plan_partitions(n_queries, n_targets, dim, device):
    """Split the query set so each group's working set fits in memory.

    The row budget lives in the shared planner layer
    (:func:`repro.engine.planner.dense_partition_rows`); this wrapper
    keeps the baseline's historical ``(start, stop)``-ranges interface.
    """
    rows = dense_partition_rows(n_queries, n_targets, dim, device)
    return partition_ranges(n_queries, rows)


def cublas_knn(queries, targets, k, device=None, cost_model=None):
    """Run the baseline KNN join on the simulated device.

    Returns a :class:`KNNResult` whose ``profile`` carries the
    simulated time used as the denominator of every speedup figure.
    """
    queries = np.asarray(queries, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    k = int(k)
    if k <= 0:
        raise ValueError("k must be positive")
    if k > len(targets):
        raise ValueError("k cannot exceed the number of target points")
    device = device or tesla_k20c()
    cost_model = cost_model or default_cost_model()

    n_q, dim = queries.shape
    n_t = targets.shape[0]
    partitions = plan_partitions(n_q, n_t, dim, device)

    pipeline = PipelineProfile(name="cublas-knn")
    gemm_profile = KernelProfile(name="gemm_distances")
    select_profile = KernelProfile(name="select_k")

    distances = np.empty((n_q, k), dtype=np.float64)
    indices = np.empty((n_q, k), dtype=np.int64)

    # Precompute the squared norms the GEMM formulation uses:
    # d(q,t)^2 = |q|^2 + |t|^2 - 2 q.t
    t_norms = np.einsum("ij,ij->i", targets, targets)

    config = LaunchConfig(block_size=DEFAULT_BLOCK_SIZE, regs_per_thread=32)
    for start, stop in partitions:
        group = queries[start:stop]
        _check_capacity(group.shape[0], n_t, dim, device)
        q_norms = np.einsum("ij,ij->i", group, group)
        sq = q_norms[:, None] + t_norms[None, :] - 2.0 * group @ targets.T
        np.maximum(sq, 0.0, out=sq)
        block = np.sqrt(sq)

        # Each partition is a separate, *serialised* pair of launches:
        # group i's selection must finish before group i+1's GEMM can
        # reuse the distance-matrix buffer.  Small groups underutilise
        # the device — the low per-group occupancy the paper blames for
        # the baseline's collapse on the partitioned datasets.
        gemm_mark, select_mark = (len(gemm_profile.warp_cycles),
                                  len(select_profile.warp_cycles))
        _account_gemm(gemm_profile, group.shape[0], n_t, dim, device,
                      cost_model)
        _run_select_kernel(select_profile, block, k, distances, indices,
                           start, device, cost_model)
        for profile, mark in ((gemm_profile, gemm_mark),
                              (select_profile, select_mark)):
            span = makespan(profile.warp_cycles[mark:],
                            config.concurrent_warps(device))
            profile.sim_time_s += ((span + cost_model.kernel_launch_cycles)
                                   / device.clock_hz)

    pipeline.add(gemm_profile)
    pipeline.add(select_profile)

    stats = JoinStats(
        n_queries=n_q, n_targets=n_t, k=k, dim=dim,
        level2_distance_computations=n_q * n_t,
        predicate_accepted_pairs=n_q * k,
        extra={"partitions": len(partitions)},
    )
    return KNNResult(distances=distances, indices=indices, stats=stats,
                     profile=pipeline, method="cublas-gpu")


# ----------------------------------------------------------------------
# Engine registration (see repro.engine)
# ----------------------------------------------------------------------
def _run_engine(queries, targets, k, ctx, **options):
    return cublas_knn(queries, targets, k, device=ctx.device, **options)


ENGINE = EngineSpec(
    name="cublas",
    run=_run_engine,
    caps=EngineCaps(needs_device=True, tiles_internally=True,
                    cost_hints=(
                        # Simulated GPU: host wall cost is the Python
                        # tiling loop over the dense matrix.
                        ("ref_s", 40.0), ("log_q", 1.0), ("log_t", 1.0),
                        ("log_k", 0.05), ("log_d", 1.0),
                        ("clusterability", 0.0))),
    description="CUBLAS-style brute-force GPU baseline (Garcia et al.)",
)


def _check_capacity(group_size, n_t, dim, device):
    """Allocate the group's working set to enforce the memory budget."""
    memory = GlobalMemory(device)
    memory.place(np.empty(0, dtype=np.float32), copy=False)
    needed = (group_size * n_t + (group_size + n_t) * dim) * _FLOAT
    if needed > memory.available_bytes:
        raise OutOfDeviceMemory(needed, memory.available_bytes,
                                memory.capacity)


def _account_gemm(profile, n_q, n_t, dim, device, cost_model):
    """Account the perfectly regular distance-matrix kernel.

    One thread per (query, target) pair tile; per pair: ``dim`` MACs at
    GEMM throughput, streaming loads of both operands (fully coalesced,
    amortised by tiling: each operand element is loaded once per
    32-wide tile) and one store of the resulting distance.
    """
    pairs = n_q * n_t
    n_threads = pairs
    warp = device.warp_size
    n_warps = (pairs + warp - 1) // warp

    # Fully regular: every lane active every step.
    flops_per_pair = 2 * dim + 2  # MAC per dim + norm add + sqrt
    # Coalesced traffic per warp: one 128-byte store per warp-step of
    # results, plus tiled operand loads (dim floats per 32-lane tile).
    stores_per_warp = (warp * _FLOAT) // device.transaction_bytes
    loads_per_warp = max(1, (dim * _FLOAT) // device.transaction_bytes + 1)

    model = cost_model
    per_warp_cycles = (
        model.issue_cycles * dim
        + model.gemm_flop_cycles * flops_per_pair
        + model.global_txn_cycles * (stores_per_warp + loads_per_warp)
    )

    profile.n_threads += n_threads
    profile.n_warps += n_warps
    profile.warp_steps += n_warps * dim
    profile.lane_steps += n_threads * dim
    profile.flops += pairs * flops_per_pair
    profile.gl_transactions += n_warps * (stores_per_warp + loads_per_warp)
    profile.gl_requests += n_threads
    profile.warp_cycles.extend([per_warp_cycles] * n_warps)
    profile.cycles += per_warp_cycles * n_warps
    profile.count("distance_computations", pairs)
    profile.count("distance_matrix_bytes", pairs * _FLOAT)


def _run_select_kernel(profile, block, k, distances, indices, row_offset,
                       device, cost_model):
    """Selection kernel: one thread per query scans its distance row.

    Each lane streams its own row from global memory (row-major rows of
    the distance matrix: lanes of a warp read addresses |T| floats
    apart — uncoalesced, as in the real baseline's layout) and
    maintains a k-bounded max-heap.  Heap update frequency is
    data-dependent, so warps diverge mildly; the dominant cost is the
    memory traffic of re-reading the full matrix.
    """
    n_rows, n_t = block.shape
    warp = device.warp_size
    txn = device.transaction_bytes

    # Exact numeric result, vectorised (equivalent to each thread's
    # k-bounded max-heap over its row).
    part = np.argpartition(block, min(k, n_t) - 1, axis=1)[:, :k]
    row_ids = np.arange(n_rows)[:, None]
    part_d = block[row_ids, part]
    order = np.lexsort((part, part_d), axis=1)
    distances[row_offset:row_offset + n_rows] = part_d[row_ids, order]
    indices[row_offset:row_offset + n_rows] = part[row_ids, order]

    # Accounting: each lane streams its own |T|-long row (rows are |T|
    # floats apart, so lanes never share a segment, but each lane's
    # sequential reads amortise to one transaction per 32 floats) and
    # maintains Garcia's insertion-sorted k-array
    # (:mod:`repro.kselect.insertion`): one comparison per element plus
    # the amortised shift cost — a random stream inserts about
    # ``k * ln(|T|/k)`` times at ~k/2 shifts each.
    expected_inserts = k * np.log(max(2.0, n_t / k))
    shift_flops = expected_inserts * (k / 2.0) / n_t
    for first in range(0, n_rows, warp):
        lanes = min(warp, n_rows - first)
        ex = WarpExecutor(profile, cost_model, txn, warp)
        ex.uniform_steps(
            n_t, lanes,
            flops_max=1.0 + shift_flops,  # compare + amortised shifts
            transactions_per_step=lanes / 32.0,  # per-lane streaming
            branch=True,
        )
        ex.end_warp()
    profile.n_threads += n_rows
