"""Exact brute-force KNN join on the host (numpy).

This is the correctness oracle for every other implementation: it
computes all |Q| x |T| distances directly (no TI, no GPU model) and
k-selects per query.  Distances use the direct sqrt-of-squared-diffs
form to match the TI implementations bit-for-bit as closely as float64
allows.
"""

from __future__ import annotations

import numpy as np

from ..core.result import JoinStats, KNNResult
from ..engine.base import EngineCaps, EngineSpec

__all__ = ["brute_force_knn", "ENGINE"]

_CHUNK_ROWS = 512


def brute_force_knn(queries, targets, k):
    """Exact KNN join by exhaustive distance computation.

    Returns a :class:`~repro.core.result.KNNResult`; ties are broken by
    target index, matching :func:`repro.kselect.select_k_smallest`.
    """
    queries = np.asarray(queries, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    k = int(k)
    if k <= 0:
        raise ValueError("k must be positive")
    if k > len(targets):
        raise ValueError("k cannot exceed the number of target points")

    n_q = len(queries)
    distances = np.empty((n_q, k), dtype=np.float64)
    indices = np.empty((n_q, k), dtype=np.int64)

    # Bound the (rows, |T|, d) broadcast intermediate to ~64M elements.
    n_t, dim = targets.shape
    chunk = max(1, min(_CHUNK_ROWS, 2 ** 26 // max(1, n_t * dim)))
    for start in range(0, n_q, chunk):
        stop = min(start + chunk, n_q)
        diff = queries[start:stop, None, :] - targets[None, :, :]
        block = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        part = np.argpartition(block, k - 1, axis=1)[:, :k]
        rows = np.arange(stop - start)[:, None]
        part_d = block[rows, part]
        # Deterministic ordering: by distance, then target index.
        order = np.lexsort((part, part_d), axis=1)
        indices[start:stop] = part[rows, order]
        distances[start:stop] = part_d[rows, order]

    stats = JoinStats(
        n_queries=n_q, n_targets=len(targets), k=k,
        dim=queries.shape[1],
        level2_distance_computations=n_q * len(targets),
        predicate_accepted_pairs=n_q * k,
    )
    return KNNResult(distances=distances, indices=indices, stats=stats,
                     method="brute-force-cpu")


# ----------------------------------------------------------------------
# Engine registration (see repro.engine)
# ----------------------------------------------------------------------
def _run_engine(queries, targets, k, ctx, **options):
    return brute_force_knn(queries, targets, k, **options)


ENGINE = EngineSpec(
    name="brute",
    run=_run_engine,
    caps=EngineCaps(cost_hints=(
        # Dense |Q|x|T| distance matrix (chunked): linear in every
        # shape axis, blind to clustering.
        ("ref_s", 26.0), ("log_q", 1.0), ("log_t", 1.0), ("log_k", 0.05),
        ("log_d", 0.9), ("clusterability", 0.0))),
    description="exact brute-force KNN on the host (correctness oracle)",
)
