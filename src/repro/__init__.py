"""Sweet KNN reproduction — TI-based KNN join on a simulated GPU.

Reproduction of "Sweet KNN: An Efficient KNN on GPU through
Reconciliation between Redundancy Removal and Regularity"
(Chen, Ding, Shen — ICDE 2017).

Quick start::

    import numpy as np
    from repro import knn_join

    points = np.random.default_rng(0).normal(size=(2000, 16))
    result = knn_join(points, points, k=10)   # Sweet KNN self-join
    result.indices, result.distances

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every reproduced table and figure.
"""

import logging as _logging

from . import obs
from .core import (METHODS, KNNResult, RangeResult, SweetKNN, knn_join,
                   range_join, reverse_knn_join, self_range_join, sweet_knn)
from .core.basic_gpu import basic_ti_knn
from .core.ti_knn import ti_knn_join
from .baselines import brute_force_knn, cublas_knn, kdtree_knn
from .workloads import knn_classify, novelty_scores
from .datasets import load as load_dataset
from .engine import (EngineCaps, EngineSpec, ExecutionPlan, PreparedIndex,
                     engine_names, get_engine, plan, register, unregister)
from .gpu import DeviceSpec, tesla_k20c
from .graph import GraphConfig, KNNGraph, build_graph, graph_knn_search
from .index import Index, UpdatePolicy
from .serve import KNNServer, ServeConfig

# Library logging convention: repro logs under the "repro" hierarchy
# and stays silent unless the application configures handlers.
_logging.getLogger("repro").addHandler(_logging.NullHandler())

__version__ = "1.5.0"

__all__ = [
    "METHODS", "KNNResult", "RangeResult", "SweetKNN", "knn_join",
    "sweet_knn", "basic_ti_knn", "ti_knn_join",
    "range_join", "self_range_join", "reverse_knn_join",
    "knn_classify", "novelty_scores",
    "brute_force_knn", "cublas_knn", "kdtree_knn",
    "Index", "UpdatePolicy",
    "GraphConfig", "KNNGraph", "build_graph", "graph_knn_search",
    "EngineCaps", "EngineSpec", "ExecutionPlan", "PreparedIndex",
    "engine_names", "get_engine", "plan", "register", "unregister",
    "KNNServer", "ServeConfig", "obs",
    "load_dataset", "DeviceSpec", "tesla_k20c",
    "__version__",
]
