"""Warp-vectorised SIMT executor — the workhorse of the simulator.

Production kernels in this reproduction are written warp-by-warp: one
Python iteration per warp *step*, with the (up to) 32 lanes of the warp
handled together through numpy.  A :class:`WarpExecutor` instance
accounts one warp; each :meth:`WarpExecutor.step` call is one lock-step
instruction and updates the owning :class:`KernelProfile` exactly the
way the lane-level reference executor (:mod:`repro.gpu.warp`) would —
the test suite asserts the two agree.

The semantics of a step:

* ``active`` lanes execute; the rest idle (warp efficiency accounting);
* a flop step costs the *widest* lane (SIMD);
* global accesses are coalesced into 128-byte segments;
* mixed branch outcomes serialize the step (divergence penalty);
* atomics serialize across lanes.

For long regular phases (every lane does ``n`` identical steps, as in
the clustering kernels or the GEMM baseline) :meth:`uniform_steps`
accounts the whole phase in O(1), which is what makes simulating the
baseline's |Q|x|T| work feasible.
"""

from __future__ import annotations

import numpy as np

from .costmodel import default_cost_model
from .profiler import KernelProfile

__all__ = ["WarpExecutor", "transactions_for"]


def transactions_for(addrs, nbytes, transaction_bytes=128):
    """Coalesced transaction count for one warp step's global accesses.

    Parameters
    ----------
    addrs:
        Array of starting byte addresses, one per accessing lane.
    nbytes:
        Scalar or per-lane array of access widths in bytes.

    Returns
    -------
    int
    """
    addrs = np.asarray(addrs, dtype=np.int64)
    if addrs.size == 0:
        return 0
    nbytes = np.broadcast_to(np.asarray(nbytes, dtype=np.int64), addrs.shape)
    first = addrs // transaction_bytes
    last = (addrs + nbytes - 1) // transaction_bytes
    spans = last - first
    if not spans.any():
        return int(np.unique(first).size)
    segments = np.concatenate(
        [np.arange(f, l + 1) for f, l in zip(first, last)])
    return int(np.unique(segments).size)


class WarpExecutor:
    """Accounts the execution of one warp, step by step."""

    def __init__(self, profile, cost_model=None, transaction_bytes=128,
                 warp_size=32):
        self.profile = profile
        self.cost_model = cost_model or default_cost_model()
        self.transaction_bytes = transaction_bytes
        self.warp_size = warp_size
        self.cycles = 0.0
        self._closed = False

    # ------------------------------------------------------------------
    def step(self, active, flops_max=0.0, flops_total=None, gl_addrs=None,
             gl_nbytes=4, shared_max=0, shared_total=None, atomics=0,
             branch=False, divergent=False, flop_cycles=None):
        """Account one lock-step warp instruction.

        Parameters
        ----------
        active:
            Number of lanes executing this step (1..warp_size).
        flops_max:
            Arithmetic ops of the widest lane (the step's SIMD cost).
        flops_total:
            Total ops across lanes (defaults to ``flops_max * active``).
        gl_addrs / gl_nbytes:
            Global accesses issued this step, for coalescing.
        shared_max / shared_total:
            Shared-memory accesses (widest lane / across lanes).
        atomics:
            Number of atomic operations issued (serialized).
        branch:
            Whether this step ends in a conditional branch.
        divergent:
            Whether the branch outcomes were mixed across lanes.
        flop_cycles:
            Optional per-op cost override (the GEMM baseline passes the
            cost model's ``gemm_flop_cycles``).
        """
        active = int(active)
        if active <= 0:
            return
        if active > self.warp_size:
            raise ValueError("active lanes exceed warp size")
        prof = self.profile
        prof.warp_steps += 1
        prof.lane_steps += active
        if flops_total is None:
            flops_total = flops_max * active
        prof.flops += flops_total

        transactions = 0
        if gl_addrs is not None:
            transactions = transactions_for(gl_addrs, gl_nbytes,
                                            self.transaction_bytes)
            prof.gl_transactions += transactions
            prof.gl_requests += int(np.asarray(gl_addrs).size)

        if shared_total is None:
            shared_total = shared_max * active
        prof.shared_accesses += int(shared_total)
        prof.atomics += int(atomics)
        if branch:
            prof.branches += 1
            if divergent:
                prof.divergent_branches += 1

        model = self.cost_model
        cost = model.issue_cycles
        per_flop = model.flop_cycles if flop_cycles is None else flop_cycles
        cost += per_flop * flops_max
        cost += model.global_txn_cycles * transactions
        cost += model.shared_cycles * shared_max
        cost += model.atomic_cycles * atomics
        if branch:
            cost += model.branch_cycles
        if divergent:
            cost *= model.divergence_penalty
        self.cycles += cost

    # ------------------------------------------------------------------
    def uniform_steps(self, n_steps, active, flops_max=0.0,
                      transactions_per_step=0, shared_max=0, branch=False,
                      flop_cycles=None):
        """Account ``n_steps`` identical fully-regular steps in O(1).

        Used for regular phases where every active lane does the same
        thing every step — no divergence by construction.
        """
        n_steps = int(n_steps)
        if n_steps <= 0 or active <= 0:
            return
        active = int(active)
        prof = self.profile
        prof.warp_steps += n_steps
        prof.lane_steps += n_steps * active
        prof.flops += n_steps * flops_max * active
        prof.gl_transactions += n_steps * transactions_per_step
        if transactions_per_step:
            prof.gl_requests += n_steps * active
        prof.shared_accesses += n_steps * shared_max * active
        if branch:
            prof.branches += n_steps

        model = self.cost_model
        per_flop = model.flop_cycles if flop_cycles is None else flop_cycles
        cost = model.issue_cycles
        cost += per_flop * flops_max
        cost += model.global_txn_cycles * transactions_per_step
        cost += model.shared_cycles * shared_max
        if branch:
            cost += model.branch_cycles
        self.cycles += n_steps * cost

    def count(self, name, n=1):
        """Increment a free profiling counter (no cycle cost)."""
        self.profile.count(name, int(n))

    # ------------------------------------------------------------------
    def end_warp(self):
        """Close out this warp and record its total cycles."""
        if self._closed:
            raise RuntimeError("warp already ended")
        self._closed = True
        self.profile.cycles += self.cycles
        self.profile.warp_cycles.append(self.cycles)
        self.profile.n_warps += 1
        return self.cycles


def new_profile(name, n_threads):
    """Create a :class:`KernelProfile` for a warp-vectorised kernel."""
    return KernelProfile(name=name, n_threads=int(n_threads))
