"""Instruction events yielded by simulated GPU threads.

A simulated kernel is a Python generator run once per thread (lane).
Each ``yield`` produces one *event* — one lock-step warp instruction —
represented as a small tuple whose first element is the event kind.
The warp executor (:mod:`repro.gpu.warp`) advances all lanes of a warp
one event at a time, which is what lets it measure warp efficiency,
divergence and memory coalescing.

Event kinds
-----------
``FLOP``
    ``(FLOP, n)`` — ``n`` arithmetic operations (e.g. one Euclidean
    distance in ``d`` dimensions costs ``3 d`` flops).
``GLOAD`` / ``GSTORE``
    ``(GLOAD, addr, nbytes)`` — a global-memory access starting at byte
    address ``addr``.  Accesses issued by the lanes of a warp in the
    same step are coalesced into 128-byte transactions.
``SHARED``
    ``(SHARED, n)`` — ``n`` shared-memory accesses (banked, on-chip).
``REG``
    ``(REG, n)`` — ``n`` register-file accesses (free in the cost
    model; register pressure instead affects occupancy).
``ATOMIC``
    ``(ATOMIC, space)`` — one atomic read-modify-write in ``space``
    (``"global"`` or ``"shared"``).
``BRANCH``
    ``(BRANCH, taken)`` — a conditional branch outcome.  Mixed outcomes
    within a warp step are recorded as a divergent branch and serialise
    the step (Section II-A of the paper).
``COUNT``
    ``(COUNT, name, n)`` — a free profiling counter increment, used for
    the paper's "saved computations" statistic (Table IV).
"""

from __future__ import annotations

__all__ = [
    "FLOP", "GLOAD", "GSTORE", "SHARED", "REG", "ATOMIC", "BRANCH", "COUNT",
    "flop", "gload", "gstore", "shared", "reg", "atomic", "branch", "count",
]

FLOP = "flop"
GLOAD = "gload"
GSTORE = "gstore"
SHARED = "shared"
REG = "reg"
ATOMIC = "atomic"
BRANCH = "branch"
COUNT = "count"


def flop(n=1):
    """``n`` arithmetic operations executed by this lane in one step."""
    return (FLOP, n)


def gload(addr, nbytes):
    """A global-memory load of ``nbytes`` at byte address ``addr``."""
    return (GLOAD, addr, nbytes)


def gstore(addr, nbytes):
    """A global-memory store of ``nbytes`` at byte address ``addr``."""
    return (GSTORE, addr, nbytes)


def shared(n=1):
    """``n`` shared-memory accesses."""
    return (SHARED, n)


def reg(n=1):
    """``n`` register accesses (free; affects occupancy only)."""
    return (REG, n)


def atomic(space="global"):
    """One atomic operation in ``space`` (``"global"``/``"shared"``)."""
    return (ATOMIC, space)


def branch(taken):
    """A conditional branch outcome for divergence accounting."""
    return (BRANCH, bool(taken))


def count(name, n=1):
    """A free profiling-counter increment (e.g. distance computations)."""
    return (COUNT, name, n)
