"""Cycle cost model for the simulated GPU.

The model assigns a cycle cost to each warp *step* (one lock-step
instruction across the lanes of a warp) from the events the step
issues.  It is a throughput model, not a latency model: latency hiding
by warp over-subscription is folded into the per-event costs, and the
kernel scheduler (:mod:`repro.gpu.kernel`) accounts for parallelism
across warps separately.

Approximations (documented per DESIGN.md):

* A flop step costs ``flop_cycles`` per operation of the *widest* lane;
  lanes with less work idle (SIMD).
* A global-memory step costs ``global_txn_cycles`` per 128-byte
  transaction after coalescing — this is what penalises the scattered
  accesses of TI filtering and rewards the streaming accesses of the
  CUBLAS-style baseline.
* A divergent branch doubles its step's cost (two serialized passes),
  on top of the idle-lane accounting that the lock-step executor
  already performs for loop trip-count disparity — the dominant
  irregularity in TI-based KNN (Section IV-A of the paper).
* Atomics serialize across lanes: cost is per atomic, not per step.
* GEMM-shaped kernels (the CUBLAS baseline) use ``gemm_flop_cycles``
  per multiply-add, reflecting CUBLAS's near-peak FMA throughput that
  plain scalar kernel code does not reach.

The constants were calibrated once so that the reproduced experiments
land in the paper's qualitative regime (see EXPERIMENTS.md); they are
deliberately exposed as a dataclass so ablations can perturb them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CostModel", "default_cost_model"]


@dataclass(frozen=True)
class CostModel:
    """Cycle costs per event category."""

    issue_cycles: float = 1.0          # per warp step (instruction issue)
    flop_cycles: float = 0.5           # per op, widest lane (dual-issue ILP)
    gemm_flop_cycles: float = 0.25     # per MAC in a CUBLAS-style GEMM
    global_txn_cycles: float = 24.0    # per DRAM 128-byte transaction
    l2_txn_cycles: float = 4.0         # per L2-resident transaction
    shared_cycles: float = 2.0         # per shared-memory access, widest lane
    atomic_cycles: float = 24.0        # per atomic op (serialized)
    branch_cycles: float = 1.0         # per branch step
    divergence_penalty: float = 2.0    # multiplier on a divergent step
    kernel_launch_cycles: float = 7000.0  # ~10 us at 0.7 GHz

    def step_cost(self, flops=0.0, transactions=0, l2_transactions=0,
                  shared=0.0, atomics=0, branch=False, divergent=False):
        """Cycle cost of one warp step issuing the given events."""
        cost = self.issue_cycles
        cost += self.flop_cycles * flops
        cost += self.global_txn_cycles * transactions
        cost += self.l2_txn_cycles * l2_transactions
        cost += self.shared_cycles * shared
        cost += self.atomic_cycles * atomics
        if branch:
            cost += self.branch_cycles
        if divergent:
            cost *= self.divergence_penalty
        return cost

    def with_(self, **overrides):
        """Return a perturbed copy (for cost-model ablations)."""
        return replace(self, **overrides)


def default_cost_model():
    """The calibrated cost model used by all experiments."""
    return CostModel()
