"""Simulated device memory: allocator, arrays, and coalescing accounting.

:class:`GlobalMemory` is a bump allocator over the device's global
memory with capacity enforcement — exceeding it raises
:class:`~repro.errors.OutOfDeviceMemory`, which is what forces the
CUBLAS-style baseline to partition large query sets exactly as the
paper describes for *3DNet*, *skin*, *ipums* and *kdd*.

:class:`GlobalArray` wraps a numpy array placed in simulated global
memory.  Simulated kernels access it through generator helpers
(:meth:`GlobalArray.load` / :meth:`GlobalArray.store`) that yield the
memory event *and* perform the actual read/write, so accounting can
never drift from behaviour::

    value = yield from arr.load(i)          # one element
    point = yield from arr.vload(i, 4)      # float4-style vector load

Coalescing follows the paper's Section II-A model: the accesses issued
by the lanes of a warp in one lock-step instruction are merged into the
minimal set of 128-byte segments they touch.
"""

from __future__ import annotations

import numpy as np

from ..errors import OutOfDeviceMemory
from . import events as ev

__all__ = [
    "GlobalMemory", "GlobalArray", "SharedArray", "RegisterArray",
    "coalesced_transactions",
]

_ALIGNMENT = 256


def coalesced_transactions(accesses, transaction_bytes=128):
    """Number of memory transactions for one warp step's accesses.

    Parameters
    ----------
    accesses:
        Iterable of ``(addr, nbytes)`` pairs issued by the lanes of a
        warp in the same lock-step instruction.
    transaction_bytes:
        Size of one transaction segment (128 bytes on Kepler).

    Returns
    -------
    int
        The number of distinct ``transaction_bytes``-sized segments
        touched — 1 when the warp's accesses fall into one segment
        (fully coalesced), up to one-plus per lane otherwise.
    """
    segments = set()
    for addr, nbytes in accesses:
        if nbytes <= 0:
            continue
        first = addr // transaction_bytes
        last = (addr + nbytes - 1) // transaction_bytes
        segments.update(range(first, last + 1))
    return len(segments)


class GlobalMemory:
    """Bump allocator over a device's simulated global memory."""

    def __init__(self, device):
        self.device = device
        self.capacity = device.global_mem_bytes
        self._next_addr = _ALIGNMENT
        self._live_bytes = 0
        self.peak_bytes = 0

    @property
    def allocated_bytes(self):
        return self._live_bytes

    @property
    def available_bytes(self):
        return self.capacity - self._live_bytes

    def alloc(self, shape, dtype=np.float32, name=None):
        """Allocate a zero-initialised :class:`GlobalArray`."""
        data = np.zeros(shape, dtype=dtype)
        return self.place(data, name=name, copy=False)

    def place(self, array, name=None, copy=True):
        """Place an existing host array into simulated global memory."""
        data = np.array(array, copy=copy)
        nbytes = int(data.nbytes)
        if nbytes > self.available_bytes:
            raise OutOfDeviceMemory(nbytes, self.available_bytes, self.capacity)
        base = self._next_addr
        self._next_addr += _round_up(nbytes)
        self._live_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self._live_bytes)
        return GlobalArray(data, base, self, name=name)

    def free(self, array):
        """Release an array's bytes (bump allocator: space not reused)."""
        if array._memory is not self:
            raise ValueError("array was not allocated from this memory")
        if not array._freed:
            array._freed = True
            self._live_bytes -= int(array.data.nbytes)

    def reset(self):
        """Free everything (between independent kernel pipelines)."""
        self._next_addr = _ALIGNMENT
        self._live_bytes = 0


def _round_up(nbytes):
    return ((nbytes + _ALIGNMENT - 1) // _ALIGNMENT) * _ALIGNMENT


class GlobalArray:
    """A numpy array living at a base address in simulated global memory.

    Host code may index ``arr.data`` freely; *simulated kernels* go
    through the generator accessors so every access produces a memory
    event for the warp executor.
    """

    def __init__(self, data, base_addr, memory, name=None):
        self.data = data
        self.base_addr = int(base_addr)
        self.name = name or "global"
        self._memory = memory
        self._freed = False
        # Row-major element strides in *bytes* for address computation.
        self.itemsize = int(data.dtype.itemsize)

    # -- addressing ----------------------------------------------------
    def addr(self, index):
        """Byte address of the element at a (possibly multi-d) index."""
        flat = np.ravel_multi_index(index, self.data.shape) if isinstance(
            index, tuple) else int(index)
        return self.base_addr + flat * self.itemsize

    # -- kernel-side accessors (generators) -----------------------------
    def load(self, index):
        """Yield the load event for one element, then return its value."""
        yield ev.gload(self.addr(index), self.itemsize)
        return self.data[index]

    def store(self, index, value):
        """Yield the store event for one element and write it."""
        yield ev.gstore(self.addr(index), self.itemsize)
        self.data[index] = value

    def vload(self, start, n):
        """Vector load of ``n`` consecutive elements (float4-style).

        Sweet KNN's row-major layout reads points with ``float4``
        vector loads to maximise bandwidth efficiency (Section IV-C3);
        one vector load is one access event covering ``n`` elements.
        """
        flat = start if not isinstance(start, tuple) else int(
            np.ravel_multi_index(start, self.data.shape))
        yield ev.gload(self.base_addr + flat * self.itemsize,
                       n * self.itemsize)
        return self.data.reshape(-1)[flat:flat + n]

    def row_load(self, i, vector_width=4):
        """Load row ``i`` of a 2-D array using vector loads.

        Returns the row; yields ``ceil(d / vector_width)`` access
        events, matching the paper's float4 loading of a point stored
        row-major.
        """
        d = self.data.shape[1]
        row_addr = self.base_addr + i * d * self.itemsize
        chunk = vector_width * self.itemsize
        for off in range(0, d * self.itemsize, chunk):
            yield ev.gload(row_addr + off, min(chunk, d * self.itemsize - off))
        return self.data[i]

    def col_element_load(self, i, dim):
        """Load dimension ``dim`` of point ``i`` from a column-major array.

        The array is stored as ``data[dim, i]`` (Fig. 7(a) of the
        paper); consecutive lanes loading consecutive ``i`` for the same
        ``dim`` coalesce perfectly, which is why the baseline prefers
        this layout.
        """
        d, n = self.data.shape
        flat = dim * n + i
        yield ev.gload(self.base_addr + flat * self.itemsize, self.itemsize)
        return self.data[dim, i]

    @property
    def nbytes(self):
        return int(self.data.nbytes)

    def __repr__(self):
        return "GlobalArray(%s, shape=%s, base=0x%x)" % (
            self.name, self.data.shape, self.base_addr)


class SharedArray:
    """Per-thread scratch placed in shared memory.

    Used for the ``kNearests`` array when the adaptive scheme chooses
    shared-memory placement (``k * 4 <= th1``).  Accesses cost one
    shared-memory event each; capacity pressure is reflected through
    the kernel's ``shared_bytes_per_thread`` occupancy input, not here.
    """

    space = "shared"

    def __init__(self, length, fill=np.inf):
        self.values = np.full(int(length), fill, dtype=np.float64)

    def access(self, n=1):
        yield ev.shared(n)

    @property
    def nbytes_per_thread(self):
        # Modelled as float32 on device, like the paper's sizeof(float)*k.
        return len(self.values) * 4


class RegisterArray:
    """Per-thread scratch placed in the register file.

    Register accesses are free in the cost model; the cost of this
    placement is the register pressure that lowers occupancy
    (Section IV-C2).
    """

    space = "registers"

    def __init__(self, length, fill=np.inf):
        self.values = np.full(int(length), fill, dtype=np.float64)

    def access(self, n=1):
        yield ev.reg(n)

    @property
    def nbytes_per_thread(self):
        return len(self.values) * 4
