"""Simulated GPU substrate for the Sweet KNN reproduction.

The paper runs on a Tesla K20c; this package replaces the hardware with
a warp-level SIMT simulator that measures the quantities the paper's
speedups hinge on — warp efficiency, divergence, memory coalescing,
occupancy and memory-capacity pressure — from real executions of the
real algorithms (see DESIGN.md, "Substitutions").

Layers
------
:mod:`~repro.gpu.device`
    Device specs (K20c factory) and occupancy.
:mod:`~repro.gpu.memory`
    Global-memory allocator with capacity enforcement, arrays with
    event-producing accessors, coalescing model.
:mod:`~repro.gpu.costmodel`
    Cycle costs per event category.
:mod:`~repro.gpu.warp`
    Lane-level lock-step reference executor (generators).
:mod:`~repro.gpu.executor`
    Warp-vectorised production executor.
:mod:`~repro.gpu.kernel`
    Launch configs and warp scheduling into simulated time.
:mod:`~repro.gpu.profiler`
    nvprof-style counters (warp efficiency, transactions, ...).
:mod:`~repro.gpu.atomics`
    Models of atomicAdd/atomicMin used by the kernels.
"""

from .costmodel import CostModel, default_cost_model
from .device import DeviceSpec, Occupancy, tesla_k20c
from .executor import WarpExecutor, transactions_for
from .kernel import LaunchConfig, finalize_kernel, makespan
from .memory import (GlobalArray, GlobalMemory, RegisterArray, SharedArray,
                     coalesced_transactions)
from .profiler import KernelProfile, PipelineProfile

__all__ = [
    "CostModel", "default_cost_model",
    "DeviceSpec", "Occupancy", "tesla_k20c",
    "WarpExecutor", "transactions_for",
    "LaunchConfig", "finalize_kernel", "makespan",
    "GlobalArray", "GlobalMemory", "RegisterArray", "SharedArray",
    "coalesced_transactions",
    "KernelProfile", "PipelineProfile",
]
