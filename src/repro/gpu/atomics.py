"""Host-visible models of the GPU atomic operations the paper relies on.

The basic KNN-TI implementation uses ``atomicAdd`` to allocate cluster
slots without synchronisation (Section III-A) and a user-defined
floating-point atomic max for per-cluster radii; Sweet KNN's
multi-thread-per-query mode shares the bound ``theta`` through
``atomicMin`` (Section IV-B2).  On the simulator the operations execute
sequentially (lock-step execution is deterministic), so these helpers
exist to (a) document intent at call sites and (b) centralise the
counting of atomic events for the cost model.
"""

from __future__ import annotations

__all__ = ["AtomicCounter", "AtomicScalar"]


class AtomicCounter:
    """An ``atomicAdd``-style integer slot allocator."""

    def __init__(self, value=0):
        self.value = int(value)
        self.operations = 0

    def fetch_add(self, n=1):
        """Return the pre-increment value, as CUDA's atomicAdd does."""
        old = self.value
        self.value += int(n)
        self.operations += 1
        return old


class AtomicScalar:
    """A float cell supporting atomicMin/atomicMax semantics."""

    def __init__(self, value):
        self.value = float(value)
        self.operations = 0

    def fetch_min(self, candidate):
        """Atomically lower the cell; returns the old value."""
        old = self.value
        if candidate < self.value:
            self.value = float(candidate)
        self.operations += 1
        return old

    def fetch_max(self, candidate):
        """Atomically raise the cell; returns the old value."""
        old = self.value
        if candidate > self.value:
            self.value = float(candidate)
        self.operations += 1
        return old
