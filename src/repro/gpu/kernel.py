"""Kernel launch configuration and simulated-time scheduling.

A kernel's simulated wall time is derived from its per-warp cycle
totals by list-scheduling the warps onto the device's concurrent warp
slots (occupancy-limited), plus a fixed launch overhead:

``sim_time = (makespan(warp_cycles, slots) + launch_overhead) / clock``

Occupancy comes from :meth:`repro.gpu.device.DeviceSpec.occupancy` with
the kernel's block size, register and shared-memory usage — this is how
the ``kNearests`` placement decision (Section IV-C2 of the paper) feeds
back into performance: register or shared-memory placement speeds up
accesses but can lower the number of resident warps.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from .costmodel import default_cost_model
from .profiler import KernelProfile

__all__ = ["LaunchConfig", "finalize_kernel", "makespan"]

#: Thread-block size used by the paper's evaluation (Section V-A).
DEFAULT_BLOCK_SIZE = 256


@dataclass(frozen=True)
class LaunchConfig:
    """Resource usage of one kernel launch, for occupancy purposes."""

    block_size: int = DEFAULT_BLOCK_SIZE
    regs_per_thread: int = 32
    shared_bytes_per_thread: int = 0

    def concurrent_warps(self, device):
        """Scheduler throughput slots: min(resident warps, issue slots).

        Residency comes from occupancy (registers/shared usage); the
        issue width bounds how many warps can make progress per cycle
        regardless of how many are resident.
        """
        occ = device.occupancy(self.regs_per_thread,
                               self.shared_bytes_per_thread,
                               self.block_size)
        per_sm = max(1, occ.threads_per_sm // device.warp_size)
        resident = per_sm * device.num_sms * device.concurrency_scale
        resident = max(1, int(resident))
        return min(resident, device.issue_warp_slots)


def makespan(warp_cycles, slots):
    """Longest-processing-time list-scheduling makespan.

    Models the SM schedulers executing ``len(warp_cycles)`` warps on
    ``slots`` concurrent warp contexts.
    """
    slots = max(1, int(slots))
    if not warp_cycles:
        return 0.0
    if slots == 1:
        return float(sum(warp_cycles))
    if len(warp_cycles) <= slots:
        return float(max(warp_cycles))
    loads = [0.0] * slots
    heapq.heapify(loads)
    for cycles in sorted(warp_cycles, reverse=True):
        least = heapq.heappop(loads)
        heapq.heappush(loads, least + cycles)
    return max(loads)


def finalize_kernel(profile, device, config=None, cost_model=None):
    """Fill in a kernel profile's simulated time; returns the profile.

    Call after all the kernel's warps have been executed/accounted.
    """
    config = config or LaunchConfig()
    cost_model = cost_model or default_cost_model()
    slots = config.concurrent_warps(device)
    span = makespan(profile.warp_cycles, slots)
    span += cost_model.kernel_launch_cycles
    profile.sim_time_s = span / device.clock_hz
    return profile


def empty_kernel(name, device, cost_model=None):
    """Profile of a kernel that launches but does no work (overhead only)."""
    cost_model = cost_model or default_cost_model()
    profile = KernelProfile(name=name)
    profile.sim_time_s = cost_model.kernel_launch_cycles / device.clock_hz
    return profile
