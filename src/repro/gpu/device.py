"""Simulated GPU device specifications and occupancy calculation.

The paper evaluates on an NVIDIA Tesla K20c (Kepler).  This module models
the device attributes Sweet KNN's adaptive scheme reads through "query
APIs" (Section IV-D2 of the paper): shared-memory size per SM, register
file size, maximum concurrent threads, and the global-memory capacity that
drives query-set partitioning in the CUBLAS baseline.

A :class:`DeviceSpec` is immutable; experiments that need a scaled memory
budget derive a new spec with :meth:`DeviceSpec.with_global_mem`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

__all__ = ["DeviceSpec", "Occupancy", "tesla_k20c"]

#: Size in bytes of one coalesced memory transaction (Section II-A).
TRANSACTION_BYTES = 128


@dataclass(frozen=True)
class Occupancy:
    """Result of an occupancy computation for one kernel configuration.

    Attributes
    ----------
    threads_per_sm:
        Number of threads that can be concurrently resident on one SM
        for the given kernel resource usage.
    limiter:
        Which resource bounds occupancy: ``"threads"``, ``"registers"``
        or ``"shared"``.
    """

    threads_per_sm: int
    limiter: str

    def warps_per_sm(self, warp_size):
        return self.threads_per_sm // warp_size


@dataclass(frozen=True)
class DeviceSpec:
    """Immutable description of a simulated GPU.

    The defaults of :func:`tesla_k20c` match the Tesla K20c attributes
    the paper uses when deriving its thresholds: 48 KB shared memory per
    SM, a 64 K-entry register file per SM, and 2048 concurrently
    resident threads per SM, which give ``th1 = 24`` bytes and
    ``th2 = 1020`` bytes (Section IV-D2).
    """

    name: str
    num_sms: int
    warp_size: int = 32
    cores_per_sm: int = 192
    max_threads_per_sm: int = 2048
    max_threads_per_block: int = 1024
    max_blocks_per_sm: int = 16
    shared_mem_per_sm: int = 48 * 1024
    registers_per_sm: int = 64 * 1024
    max_registers_per_thread: int = 255
    global_mem_bytes: int = 5 * 1024 ** 3
    l2_bytes: int = 1280 * 1024
    clock_hz: float = 706e6
    transaction_bytes: int = TRANSACTION_BYTES
    #: Scales the *scheduler's* concurrent-warp slots and the adaptive
    #: scheme's ``max_cur`` (device-wide thread budget), without
    #: touching per-SM resources (th1/th2).  Experiments on scaled-down
    #: dataset stand-ins scale this by the same factor so the ratio of
    #: device parallelism to problem size matches the paper's setup
    #: (see DESIGN.md, "Substitutions").
    concurrency_scale: float = 1.0

    def __post_init__(self):
        if self.num_sms <= 0:
            raise ValueError("num_sms must be positive")
        if self.warp_size <= 0:
            raise ValueError("warp_size must be positive")
        if self.max_threads_per_sm % self.warp_size != 0:
            raise ValueError("max_threads_per_sm must be a multiple of warp_size")
        if self.global_mem_bytes <= 0:
            raise ValueError("global_mem_bytes must be positive")

    # ------------------------------------------------------------------
    # Derived quantities used by the adaptive scheme (Section IV-D)
    # ------------------------------------------------------------------
    @property
    def max_concurrent_threads(self):
        """Maximum threads concurrently resident on the whole device.

        This is the ``max_cur`` quantity of Section IV-D3 before any
        per-kernel resource limits are applied.
        """
        return self.num_sms * self.max_threads_per_sm

    @property
    def issue_warp_slots(self):
        """Warp-throughput slots of the whole device.

        Resident warps hide latency; *throughput* is bounded by the
        execution cores: ``cores_per_sm / warp_size`` warps issue per
        SM per cycle (6 on the K20c).  The scheduler uses
        ``min(resident warps, issue slots)``, so occupancy only hurts
        when residency drops below the issue width — matching real
        behaviour, where halving occupancy rarely halves throughput.
        Scaled by ``concurrency_scale`` like everything scheduler-side.
        """
        slots = (self.num_sms * self.cores_per_sm / self.warp_size
                 * self.concurrency_scale)
        return max(1, int(round(slots)))

    @property
    def shared_mem_threshold_th1(self):
        """``th1`` of Section IV-D2, in bytes per thread.

        ``th1 = shared_mem_size / max_currPerSM``; a per-thread
        ``kNearests`` array is considered for shared memory only when
        its size does not exceed this threshold.
        """
        return self.shared_mem_per_sm // self.max_threads_per_sm

    @property
    def register_threshold_th2(self):
        """``th2`` of Section IV-D2, in bytes per thread.

        ``th2 = max_regPerThread * 4`` bytes; ``kNearests`` arrays no
        larger than this (and larger than ``th1``) are declared as local
        variables so they may live in registers.
        """
        return self.max_registers_per_thread * 4

    # ------------------------------------------------------------------
    # Occupancy
    # ------------------------------------------------------------------
    def occupancy(self, regs_per_thread=32, shared_bytes_per_thread=0,
                  block_size=256):
        """Compute how many threads fit concurrently on one SM.

        Parameters mirror the CUDA occupancy calculator inputs the paper
        cites [20]: per-thread register usage, per-thread shared-memory
        usage and the thread-block size.

        Returns
        -------
        Occupancy
        """
        if block_size <= 0 or block_size > self.max_threads_per_block:
            raise ValueError(
                "block_size must be in (0, %d]" % self.max_threads_per_block
            )
        regs_per_thread = max(1, int(regs_per_thread))
        shared_bytes_per_thread = max(0, int(shared_bytes_per_thread))

        limits = {"threads": self.max_threads_per_sm}
        limits["registers"] = self.registers_per_sm // regs_per_thread
        if shared_bytes_per_thread:
            shared_per_block = shared_bytes_per_thread * block_size
            blocks = self.shared_mem_per_sm // shared_per_block
            limits["shared"] = blocks * block_size
        limiter = min(limits, key=lambda name: limits[name])
        threads = limits[limiter]
        # Residency is granted in whole blocks, themselves whole warps.
        threads = (threads // block_size) * block_size
        threads = min(threads, self.max_blocks_per_sm * block_size,
                      self.max_threads_per_sm)
        threads = (threads // self.warp_size) * self.warp_size
        if threads <= 0:
            # A single block always runs, however oversubscribed.
            threads = min(block_size, self.max_threads_per_sm)
        return Occupancy(threads_per_sm=threads, limiter=limiter)

    def concurrent_threads(self, regs_per_thread=32, shared_bytes_per_thread=0,
                           block_size=256):
        """Device-wide concurrent thread count for a kernel configuration.

        This is the adaptive scheme's ``max_cur`` (Section IV-D3);
        scaled by ``concurrency_scale`` for scaled-down experiments.
        """
        occ = self.occupancy(regs_per_thread, shared_bytes_per_thread,
                             block_size)
        total = occ.threads_per_sm * self.num_sms * self.concurrency_scale
        return max(self.warp_size, int(total))

    # ------------------------------------------------------------------
    # Derivation helpers
    # ------------------------------------------------------------------
    def with_global_mem(self, global_mem_bytes):
        """Return a copy of this spec with a different memory capacity.

        Dataset stand-ins in this reproduction are scaled down from the
        UCI originals; experiments scale the device memory by the same
        factor so the baseline's partitioning behaviour is preserved
        (see DESIGN.md Section 2).
        """
        return dataclasses.replace(self, global_mem_bytes=int(global_mem_bytes))

    def scaled(self, factor):
        """Return a copy with global memory scaled by ``factor``."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return self.with_global_mem(max(1, int(self.global_mem_bytes * factor)))

    def with_concurrency_scale(self, factor):
        """Return a copy with the scheduler concurrency scaled."""
        if factor <= 0:
            raise ValueError("concurrency scale must be positive")
        return dataclasses.replace(self, concurrency_scale=float(factor))

    def with_l2(self, l2_bytes):
        """Return a copy with a different L2 capacity (scaling)."""
        return dataclasses.replace(self, l2_bytes=max(1024, int(l2_bytes)))

    def l2_hit_rate(self, working_set_bytes):
        """Fraction of repeated accesses to a structure served by L2.

        A simple capacity model: a structure of ``s`` bytes re-read
        under a uniform access pattern hits L2 with probability
        ``min(1, l2 / s)``.
        """
        if working_set_bytes <= 0:
            return 1.0
        return min(1.0, self.l2_bytes / float(working_set_bytes))


def tesla_k20c(global_mem_bytes=None):
    """Build the Tesla K20c spec used throughout the paper's evaluation.

    Parameters
    ----------
    global_mem_bytes:
        Optional override of the 5 GB global memory, used by experiments
        that scale the capacity along with the scaled-down datasets.
    """
    spec = DeviceSpec(name="Tesla K20c (simulated)", num_sms=13)
    if global_mem_bytes is not None:
        spec = spec.with_global_mem(global_mem_bytes)
    return spec
