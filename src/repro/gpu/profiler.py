"""nvprof-style profiling counters for simulated kernels.

:class:`KernelProfile` aggregates, per kernel launch, the quantities the
paper reports or reasons about:

* **warp efficiency** — "the ratio of the average active threads per
  warp to the maximum number of threads per warp" (Section V-B,
  Table IV), measured here as total lane-steps over ``32 ×`` warp-steps;
* **memory transactions** after coalescing;
* **divergent branches**;
* free-form counters such as ``"distance_computations"``, from which the
  *saved computations* column of Table IV is derived.

:class:`PipelineProfile` strings multiple kernel launches together into
one end-to-end run (init + level-1 + level-2 + merge for Sweet KNN, or
GEMM + select per partition for the baseline) with a total simulated
time, which is what the speedup figures compare.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["KernelProfile", "PipelineProfile"]


@dataclass
class KernelProfile:
    """Counters for one simulated kernel launch."""

    name: str
    n_threads: int = 0
    n_warps: int = 0
    warp_steps: int = 0
    lane_steps: int = 0
    flops: float = 0.0
    gl_transactions: int = 0
    l2_transactions: int = 0
    gl_requests: int = 0
    shared_accesses: int = 0
    reg_accesses: int = 0
    atomics: int = 0
    branches: int = 0
    divergent_branches: int = 0
    cycles: float = 0.0
    sim_time_s: float = 0.0
    warp_cycles: list = field(default_factory=list)
    counters: dict = field(default_factory=dict)

    @property
    def warp_size(self):
        return 32

    @property
    def warp_efficiency(self):
        """Average active lanes per warp step, as a fraction of 32."""
        if self.warp_steps == 0:
            return 1.0
        return self.lane_steps / (self.warp_size * self.warp_steps)

    @property
    def coalescing_efficiency(self):
        """Requests per transaction, normalised to 1.0 = fully coalesced."""
        if self.gl_transactions == 0:
            return 1.0
        return min(1.0, self.gl_requests / (self.gl_transactions * 32.0))

    def count(self, name, n=1):
        """Increment a free-form profiling counter."""
        self.counters[name] = self.counters.get(name, 0) + n

    def get_count(self, name):
        return self.counters.get(name, 0)

    def merge_from(self, other):
        """Fold another launch of the same logical kernel into this one."""
        self.n_threads += other.n_threads
        self.n_warps += other.n_warps
        self.warp_steps += other.warp_steps
        self.lane_steps += other.lane_steps
        self.flops += other.flops
        self.gl_transactions += other.gl_transactions
        self.l2_transactions += other.l2_transactions
        self.gl_requests += other.gl_requests
        self.shared_accesses += other.shared_accesses
        self.reg_accesses += other.reg_accesses
        self.atomics += other.atomics
        self.branches += other.branches
        self.divergent_branches += other.divergent_branches
        self.cycles += other.cycles
        self.sim_time_s += other.sim_time_s
        self.warp_cycles.extend(other.warp_cycles)
        for key, val in other.counters.items():
            self.counters[key] = self.counters.get(key, 0) + val
        return self

    def summary(self):
        return {
            "kernel": self.name,
            "threads": self.n_threads,
            "warps": self.n_warps,
            "warp_efficiency": round(self.warp_efficiency, 4),
            "flops": self.flops,
            "gl_transactions": self.gl_transactions,
            "l2_transactions": self.l2_transactions,
            "divergent_branches": self.divergent_branches,
            "cycles": round(self.cycles, 1),
            "sim_time_s": self.sim_time_s,
            **self.counters,
        }

    def publish(self, registry):
        """Publish this launch into a metrics registry as ``gpu.kernel.*``.

        Counter-like quantities accumulate; per-launch qualities (warp
        efficiency, simulated time) go into histograms so repeated
        launches keep their distribution.
        """
        prefix = "gpu.kernel.%s." % self.name
        registry.counter(prefix + "launches").inc()
        registry.counter(prefix + "warps").inc(self.n_warps)
        registry.counter(prefix + "gl_transactions").inc(self.gl_transactions)
        registry.counter(prefix + "divergent_branches").inc(
            self.divergent_branches)
        registry.histogram(prefix + "warp_efficiency").observe(
            self.warp_efficiency)
        registry.histogram(prefix + "sim_time_s").observe(self.sim_time_s)
        return registry


@dataclass
class PipelineProfile:
    """An end-to-end simulated run composed of several kernel launches."""

    name: str
    kernels: list = field(default_factory=list)
    host_time_s: float = 0.0

    def add(self, profile):
        self.kernels.append(profile)
        return profile

    @property
    def sim_time_s(self):
        """Total simulated time including modelled host-side overhead."""
        return sum(k.sim_time_s for k in self.kernels) + self.host_time_s

    @property
    def total_flops(self):
        return sum(k.flops for k in self.kernels)

    @property
    def total_transactions(self):
        return sum(k.gl_transactions for k in self.kernels)

    def counter(self, name):
        return sum(k.get_count(name) for k in self.kernels)

    @property
    def warp_efficiency(self):
        """Lane-step-weighted warp efficiency across all kernels."""
        steps = sum(k.warp_steps for k in self.kernels)
        lanes = sum(k.lane_steps for k in self.kernels)
        if steps == 0:
            return 1.0
        return lanes / (32.0 * steps)

    def filter_warp_efficiency(self, substring="level2"):
        """Warp efficiency of the kernels whose name contains a substring.

        Table IV profiles the level-2 filtering kernel specifically; the
        default selects it.
        """
        selected = [k for k in self.kernels if substring in k.name]
        steps = sum(k.warp_steps for k in selected)
        lanes = sum(k.lane_steps for k in selected)
        if steps == 0:
            return 1.0
        return lanes / (32.0 * steps)

    def summary(self):
        return {
            "pipeline": self.name,
            "sim_time_s": self.sim_time_s,
            "kernels": [k.summary() for k in self.kernels],
        }

    def publish(self, registry):
        """Publish every kernel launch plus pipeline-level aggregates."""
        for kernel in self.kernels:
            kernel.publish(registry)
        registry.counter("gpu.pipeline.runs").inc()
        registry.histogram("gpu.pipeline.sim_time_s").observe(self.sim_time_s)
        registry.histogram("gpu.pipeline.warp_efficiency").observe(
            self.warp_efficiency)
        return registry
