"""Per-lane step logs and warp folding.

The TI filtering kernels are *data-dependent*: each thread's loop trip
counts and branch outcomes depend on its query.  Because one thread's
scan is independent of the others (threads only share read-only data
and, in multi-thread-per-query mode, a monotone bound), the simulator
can execute each lane's scan sequentially, record a compact per-step
log, and then *fold* the 32 logs of every warp into lock-step warp
accounting — mathematically identical to interleaved execution under
the lock-step model, but vectorisable.

A :class:`LaneLog` records, per warp step the lane executes:

* ``flops`` — arithmetic ops (3d+1 for a distance, ~3 for a bound);
* ``txns`` — DRAM transactions issued (layout-dependent);
* ``l2`` — transactions served by the L2 cache (small hot structures:
  cluster centres, member-distance arrays, and the L2-resident share
  of the point matrix);
* ``heap_ops`` — accesses to the lane's ``kNearests`` structure, whose
  cost is resolved at fold time from the placement decision
  (global / shared / registers — Section IV-C2 of the paper);
* ``atomics`` — atomic operations issued;
* ``code`` — a small integer describing the step's branch outcome
  (enter-cluster / break / skip / compute ...); a warp step whose
  active lanes disagree is a divergent branch.

Cross-lane coalescing note: the level-2 kernels access scattered
target rows, whose segments essentially never coincide across lanes,
so the fold counts transactions per lane without cross-lane merging —
the lane-level reference executor is configured identically in the
cross-validation tests.
"""

from __future__ import annotations

import numpy as np

from .costmodel import default_cost_model

__all__ = ["LaneLog", "fold_warp_logs", "account_ragged",
            "HEAP_IN_GLOBAL", "HEAP_IN_SHARED", "HEAP_IN_REGISTERS"]

HEAP_IN_GLOBAL = "global"
HEAP_IN_SHARED = "shared"
HEAP_IN_REGISTERS = "registers"


class LaneLog:
    """Compact per-step execution log of one simulated thread."""

    __slots__ = ("flops", "txns", "l2", "heap_ops", "atomics", "code")

    def __init__(self):
        self.flops = []
        self.txns = []
        self.l2 = []
        self.heap_ops = []
        self.atomics = []
        self.code = []

    def step(self, flops=0.0, txns=0, l2=0, heap_ops=0, atomics=0, code=0):
        """Record one warp step executed by this lane."""
        self.flops.append(flops)
        self.txns.append(txns)
        self.l2.append(l2)
        self.heap_ops.append(heap_ops)
        self.atomics.append(atomics)
        self.code.append(code)

    def bulk(self, count, flops=0.0, txns=0, l2=0, heap_ops=0, atomics=0,
             code=0):
        """Record ``count`` identical steps (e.g. a run of skips)."""
        count = int(count)
        if count <= 0:
            return
        self.flops.extend([flops] * count)
        self.txns.extend([txns] * count)
        self.l2.extend([l2] * count)
        self.heap_ops.extend([heap_ops] * count)
        self.atomics.extend([atomics] * count)
        self.code.extend([code] * count)

    def __len__(self):
        return len(self.flops)

    def as_arrays(self):
        return (np.asarray(self.flops, dtype=np.float64),
                np.asarray(self.txns, dtype=np.float64),
                np.asarray(self.l2, dtype=np.float64),
                np.asarray(self.heap_ops, dtype=np.float64),
                np.asarray(self.atomics, dtype=np.int64),
                np.asarray(self.code, dtype=np.int64))


def _segment_positions(code, marker):
    """Aligned-timeline positions of one lane's steps.

    Returns ``(seg_ids, within)``: for each step, which reconvergence
    segment it belongs to (a new segment starts at every ``marker``
    step) and its offset within that segment.
    """
    starts = code == marker
    seg_ids = np.cumsum(starts)  # steps before the first marker: segment 0
    boundaries = np.flatnonzero(starts)
    seg_start_of = np.zeros(seg_ids.max() + 1, dtype=np.int64)
    seg_start_of[seg_ids[boundaries]] = boundaries
    within = np.arange(code.size) - seg_start_of[seg_ids]
    return seg_ids, within


def fold_warp_logs(logs, profile, cost_model=None,
                   heap_placement=HEAP_IN_GLOBAL, heap_coalesced=True,
                   reconverge_code=None):
    """Fold up to 32 lane logs into one warp's lock-step accounting.

    Parameters
    ----------
    logs:
        The warp's :class:`LaneLog` objects (shorter lanes idle once
        finished — that is the warp-efficiency loss of trip-count
        disparity the paper battles with thread-data remapping).
    profile:
        :class:`~repro.gpu.profiler.KernelProfile` updated in place.
    heap_placement:
        Where ``kNearests`` lives; resolves the cost of ``heap_ops``:
        global memory (transactions), shared memory, or registers
        (free).
    heap_coalesced:
        For global placement: ``True`` models the paper's Fig. 6
        layout 2 (per-lane slots interleaved so simultaneous accesses
        coalesce); ``False`` models layout 1 (each access its own
        transaction).
    reconverge_code:
        SIMT loop reconvergence: when set, a step with this code opens
        a new *segment* (the level-2 kernel passes the enter-cluster
        code), and the warp reconverges at every segment boundary —
        lanes that finish a candidate cluster early idle until the
        warp's slowest lane finishes it.  This is what collapses warp
        efficiency when the lanes of a warp scan different candidate
        lists (Table I of the paper) and what thread-data remapping
        repairs (Table II).

    Returns
    -------
    float
        The warp's total cycles (also appended to the profile).
    """
    cost_model = cost_model or default_cost_model()
    logs = [log for log in logs if len(log)]
    if not logs:
        return 0.0
    if len(logs) > 32:
        raise ValueError("a warp folds at most 32 lanes")

    lanes = len(logs)
    lengths = np.asarray([len(log) for log in logs], dtype=np.int64)
    raw = [log.as_arrays() for log in logs]

    if reconverge_code is None:
        positions = [np.arange(length) for length in lengths]
        steps = int(lengths.max())
    else:
        seg_info = [_segment_positions(arrays[5], reconverge_code)
                    for arrays in raw]
        n_segments = max(int(seg.max()) + 1 for seg, _ in seg_info)
        seg_max = np.zeros(n_segments, dtype=np.int64)
        for seg_ids, within in seg_info:
            np.maximum.at(seg_max, seg_ids, within + 1)
        offsets = np.concatenate([[0], np.cumsum(seg_max)[:-1]])
        positions = [offsets[seg_ids] + within
                     for seg_ids, within in seg_info]
        steps = int(seg_max.sum())

    flops = np.zeros((lanes, steps))
    txns = np.zeros((lanes, steps), dtype=np.float64)
    l2 = np.zeros((lanes, steps), dtype=np.float64)
    heap_ops = np.zeros((lanes, steps), dtype=np.float64)
    atomics = np.zeros((lanes, steps), dtype=np.int64)
    codes = np.full((lanes, steps), -1, dtype=np.int64)
    for row, (arrays, pos) in enumerate(zip(raw, positions)):
        f, t, lane_l2, h, a, c = arrays
        flops[row, pos] = f
        txns[row, pos] = t
        l2[row, pos] = lane_l2
        heap_ops[row, pos] = h
        atomics[row, pos] = a
        codes[row, pos] = c

    active = codes >= 0

    flops_max = flops.max(axis=0)
    txn_sum = txns.sum(axis=0)
    l2_sum = l2.sum(axis=0)
    heap_sum = heap_ops.sum(axis=0)
    heap_max = heap_ops.max(axis=0)
    atomic_sum = atomics.sum(axis=0)

    # Divergence: active lanes disagree on the step's branch outcome.
    code_max = codes.max(axis=0)
    code_min = np.where(active, codes, np.iinfo(np.int64).max).min(axis=0)
    divergent = code_max != code_min

    # Resolve kNearests placement into resource costs.
    shared_max = np.zeros(steps)
    if heap_placement == HEAP_IN_SHARED:
        shared_max = heap_max.astype(np.float64)
        profile.shared_accesses += int(heap_sum.sum())
    elif heap_placement == HEAP_IN_REGISTERS:
        profile.reg_accesses += int(heap_sum.sum())
    elif heap_placement == HEAP_IN_GLOBAL:
        # Two access patterns: the root compare (slot 0, every lane at
        # the same index — coalesced under Fig. 6's layout 2), and the
        # sift walk of an update (lanes diverge through different heap
        # levels — scattered 4-byte reads issued as 32-byte sectors in
        # either layout).  This sift traffic is what makes large-k
        # kNearests maintenance so expensive (Section IV-B1).
        heap_lanes = (heap_ops > 0).sum(axis=0)
        sift = np.maximum(heap_ops - 1.0, 0.0).sum(axis=0)
        if heap_coalesced:
            # Layout 2: root compares coalesce across the warp.
            extra = np.ceil(heap_lanes / 32.0) + 0.25 * sift
        else:
            # Layout 1: even the root compares are scattered.
            extra = 0.25 * (heap_lanes + sift)
        txn_sum = txn_sum + extra
    else:
        raise ValueError("unknown heap placement: %r" % (heap_placement,))

    model = cost_model
    # Divergence serializes instruction issue and arithmetic (the two
    # branch paths replay), but memory transactions are issued once.
    compute = (model.issue_cycles
               + model.flop_cycles * flops_max
               + model.shared_cycles * shared_max
               + model.branch_cycles)
    compute = np.where(divergent, compute * model.divergence_penalty, compute)
    cycles = (compute
              + model.global_txn_cycles * txn_sum
              + model.l2_txn_cycles * l2_sum
              + model.atomic_cycles * atomic_sum)
    warp_cycles = float(cycles.sum())

    profile.warp_steps += steps
    profile.lane_steps += int(lengths.sum())
    profile.flops += float(flops.sum())
    profile.gl_transactions += float(txn_sum.sum())
    profile.l2_transactions += float(l2_sum.sum())
    profile.gl_requests += int((txns > 0).sum())
    profile.atomics += int(atomic_sum.sum())
    profile.branches += steps
    profile.divergent_branches += int(divergent.sum())
    profile.cycles += warp_cycles
    profile.warp_cycles.append(warp_cycles)
    profile.n_warps += 1
    return warp_cycles


def account_ragged(profile, lane_steps, flops_per_step=0.0,
                   txns_per_warp_step=0.0, l2_per_warp_step=0.0,
                   atomics_total=0, cost_model=None, warp_size=32):
    """Closed-form fold for ragged but per-step-homogeneous kernels.

    Used for kernels where every lane executes ``lane_steps[i]``
    identical steps (e.g. the per-cluster sort whose trip count is the
    cluster size): warp steps are the per-warp maxima, lane steps the
    sum, with no divergence beyond early lane exit.

    ``txns_per_warp_step`` is the warp-aggregate transaction count of
    one step — 1 for a broadcast or a fully coalesced access, up to 32
    (or more) for scattered per-lane accesses; it may be fractional
    when per-lane sequential streams amortise over the 128-byte
    segment (32 floats per transaction).
    """
    cost_model = cost_model or default_cost_model()
    lane_steps = np.asarray(lane_steps, dtype=np.int64)
    if lane_steps.size == 0:
        return
    pad = (-lane_steps.size) % warp_size
    padded = np.concatenate([lane_steps, np.zeros(pad, dtype=np.int64)])
    per_warp = padded.reshape(-1, warp_size)
    warp_max = per_warp.max(axis=1)

    step_cost = (cost_model.issue_cycles
                 + cost_model.flop_cycles * flops_per_step
                 + cost_model.global_txn_cycles * txns_per_warp_step
                 + cost_model.l2_txn_cycles * l2_per_warp_step)
    warp_cycles = warp_max.astype(np.float64) * step_cost
    if atomics_total:
        # Atomics serialize; spread their cost across the warps.
        warp_cycles += (cost_model.atomic_cycles * atomics_total
                        / warp_cycles.size)
        profile.atomics += int(atomics_total)

    profile.n_threads += int(lane_steps.size)
    profile.n_warps += int(per_warp.shape[0])
    profile.warp_steps += int(warp_max.sum())
    profile.lane_steps += int(lane_steps.sum())
    profile.flops += float(flops_per_step * lane_steps.sum())
    profile.gl_transactions += float(txns_per_warp_step * warp_max.sum())
    profile.l2_transactions += float(l2_per_warp_step * warp_max.sum())
    profile.cycles += float(warp_cycles.sum())
    profile.warp_cycles.extend(warp_cycles.tolist())
