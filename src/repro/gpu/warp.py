"""Lane-level lock-step warp execution (reference executor).

This is the *reference* SIMT executor: every thread of a warp is a
Python generator yielding :mod:`repro.gpu.events` events, and the warp
advances all unfinished lanes one event per step.  It is precise but
slow, so production kernels use the warp-vectorised executor in
:mod:`repro.gpu.executor`; the test suite cross-validates the two on
small kernels (same warp efficiency, transactions and cycles).

The lock-step model captures the paper's two GPU performance factors
(Section II-A) directly:

* **thread divergence** — lanes whose loops run longer keep the warp
  alive while shorter lanes idle, lowering warp efficiency; mixed
  branch outcomes within a step serialize it;
* **memory coalescing** — the global accesses of one step are merged
  into distinct 128-byte segments.
"""

from __future__ import annotations

from .costmodel import default_cost_model
from .memory import coalesced_transactions
from .profiler import KernelProfile
from . import events as ev

__all__ = ["run_warp_lanes", "run_lanes"]


def run_warp_lanes(lane_generators, profile, cost_model=None,
                   transaction_bytes=128, warp_size=32):
    """Execute one warp of lane generators in lock-step.

    Parameters
    ----------
    lane_generators:
        Up to ``warp_size`` generators, one per lane; each yields
        events from :mod:`repro.gpu.events`.
    profile:
        :class:`~repro.gpu.profiler.KernelProfile` updated in place.
    cost_model:
        Optional :class:`~repro.gpu.costmodel.CostModel`.

    Returns
    -------
    float
        Total cycles consumed by this warp.
    """
    if len(lane_generators) > warp_size:
        raise ValueError("a warp holds at most %d lanes" % warp_size)
    cost_model = cost_model or default_cost_model()
    lanes = list(lane_generators)
    finished = [False] * len(lanes)
    warp_cycles = 0.0

    while True:
        step_events = []
        for i, lane in enumerate(lanes):
            if finished[i]:
                continue
            try:
                event = next(lane)
            except StopIteration:
                finished[i] = True
                continue
            step_events.append(event)
        if not step_events:
            break
        warp_cycles += _account_step(step_events, profile, cost_model,
                                     transaction_bytes)
    profile.cycles += warp_cycles
    profile.warp_cycles.append(warp_cycles)
    profile.n_warps += 1
    return warp_cycles


def _account_step(step_events, profile, cost_model, transaction_bytes):
    """Fold one step's lane events into the profile; return its cycles."""
    max_flops = 0
    total_flops = 0
    accesses = []
    max_shared = 0
    atomics = 0
    branch_outcomes = set()
    has_branch = False
    countable = 0

    for event in step_events:
        kind = event[0]
        if kind == ev.FLOP:
            n = event[1]
            total_flops += n
            if n > max_flops:
                max_flops = n
        elif kind == ev.GLOAD or kind == ev.GSTORE:
            accesses.append((event[1], event[2]))
        elif kind == ev.SHARED:
            n = event[1]
            profile.shared_accesses += n
            if n > max_shared:
                max_shared = n
        elif kind == ev.REG:
            profile.reg_accesses += event[1]
        elif kind == ev.ATOMIC:
            atomics += 1
        elif kind == ev.BRANCH:
            has_branch = True
            branch_outcomes.add(event[1])
        elif kind == ev.COUNT:
            profile.count(event[1], event[2])
            countable += 1
        else:
            raise ValueError("unknown event kind: %r" % (kind,))

    # A step made only of COUNT events is free bookkeeping, not an
    # instruction: it does not advance the warp clock.
    if countable == len(step_events):
        return 0.0

    profile.warp_steps += 1
    profile.lane_steps += len(step_events)
    profile.flops += total_flops

    transactions = 0
    if accesses:
        transactions = coalesced_transactions(accesses, transaction_bytes)
        profile.gl_transactions += transactions
        profile.gl_requests += len(accesses)

    divergent = False
    if has_branch:
        profile.branches += 1
        if len(branch_outcomes) > 1:
            divergent = True
            profile.divergent_branches += 1

    return cost_model.step_cost(
        flops=max_flops, transactions=transactions, shared=max_shared,
        atomics=atomics, branch=has_branch, divergent=divergent)


def run_lanes(kernel_fn, n_threads, args=(), name="kernel", cost_model=None,
              warp_size=32, transaction_bytes=128):
    """Run ``kernel_fn(tid, *args)`` for every thread, warp by warp.

    Convenience wrapper used by tests and small kernels; returns the
    populated :class:`KernelProfile` (without scheduling — see
    :func:`repro.gpu.kernel.launch` for simulated time).
    """
    profile = KernelProfile(name=name, n_threads=n_threads)
    cost_model = cost_model or default_cost_model()
    for first in range(0, n_threads, warp_size):
        tids = range(first, min(first + warp_size, n_threads))
        generators = [kernel_fn(tid, *args) for tid in tids]
        run_warp_lanes(generators, profile, cost_model, transaction_bytes,
                       warp_size)
    return profile
