"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    One KNN join on a dataset stand-in (or a synthetic mixture) with a
    chosen engine; prints the result profile.
``compare``
    All three GPU engines on one dataset, side by side with speedups.
``datasets``
    The Table III stand-in registry with scales and device parameters.
``adaptive``
    What the Fig. 8 adaptive scheme decides for a problem shape,
    without running the join.
``plan``
    The full execution plan (engine, adaptive configuration, landmark
    counts, query batching) the dispatcher would use — the CLI view of
    :func:`repro.plan`.
``classify``
    Majority-vote KNN classification on a labelled synthetic mixture
    (train/test split), via :func:`repro.workloads.knn_classify`;
    prints the held-out accuracy.
``novelty``
    Average-distance novelty scoring: scores a held-out sample plus
    injected far-away outliers against the reference set and reports
    the separation (:func:`repro.workloads.novelty_scores`).
``serve-bench``
    Open-loop load generation against an in-process
    :class:`~repro.serve.KNNServer`; prints the serving stats table
    (latency percentiles, batch occupancy, cache hit rate, rejection
    and expiry counts).  ``--index-dir`` preloads a saved index into
    the server's store (memory-mapped) so the first request is warm.
``index build`` / ``index inspect`` / ``index update``
    The prepared-index lifecycle (:mod:`repro.index`): cluster a
    target set once and persist it to a directory; print a saved
    index's manifest; apply incremental add/remove updates in place.
    ``run --index-dir`` executes the join against a saved index
    without rebuilding it.
``graph build`` / ``graph inspect``
    The approximate k-NN graph tier (:mod:`repro.graph`): NN-descent
    over a saved index's live rows, recall-calibrated and persisted
    into ``<index-dir>/graph``; print a saved graph's manifest.  The
    graph engines (``graph-bfs``, ``graph-greedy``) answer ``run``
    from the artifact; ``--recall-target`` picks the calibrated
    search width, and on ``serve-bench`` it mixes recall-targeted
    requests into the load (the server routes them to the graph
    tier and reports the per-route breakdown).
``trace``
    Run any other command under an active tracer and export the
    telemetry: a Perfetto-loadable Chrome trace (``--trace-out``,
    default ``trace.json``), an optional JSONL event log
    (``--events-out``) and the filtering-funnel summary table.
    ``--check-funnel`` turns the funnel invariant (level-2 survivors
    <= level-1 survivors <= candidates) into the exit code.
``explain``
    One KNN join with ``explain=True``: prints the per-query
    :class:`~repro.obs.audit.QueryAudit` (plan knobs, shard fan-out,
    funnel counts, span timings); ``--json FILE`` appends it as JSONL.
``bench-gate``
    The benchmark regression gate (:mod:`repro.obs.baseline`):
    compares fresh ``BENCH_*.json`` payloads against the committed
    ``TRAJECTORY.jsonl`` history with noise-tolerant thresholds and
    exits nonzero on regression; ``--ingest`` appends instead of
    gating (baseline seeding).
``sched calibrate`` / ``sched inspect``
    The cost-model scheduler (:mod:`repro.sched`): fit the per-engine
    cost model from the committed benchmark trajectory into a versioned
    ``cost_model.json`` artifact; print an artifact's fitted weights and
    its per-dataset engine predictions.  ``--method auto`` on ``run`` /
    ``plan`` / ``explain`` asks the scheduler for the cheapest predicted
    exact engine (set ``REPRO_SCHED_MODEL`` to the artifact to use the
    calibrated model instead of the pinned prior table).
``obs report``
    Render a JSONL event log (``trace --events-out``) as tables: span
    timings, the filtering funnel, serving metrics; ``--slo`` also
    evaluates SLOs against the log's final metrics snapshot and turns
    breaches into the exit code.

``serve-bench --slo NAME=BOUND`` (repeatable) attaches live SLO
monitors to the benched server and exits nonzero when any objective is
breached at the end of the run.

The ``--method`` choices come straight from the engine registry
(:func:`repro.engine.engine_names`), so engines registered by plugins
are runnable by name; ``compare --methods`` takes a comma-separated
registry-validated list.  The predicate-join engines (``range-join``,
``self-join-eps``, ``range-join-brute``) additionally need ``--eps``;
``run``/``compare`` fail fast with a clear message when the knob is
missing (the engine's ``required_options`` drive the check).  The
approximate graph engines follow the same pattern: ``run`` needs
``--index-dir`` pointing at an index with a fresh graph artifact (the
message says exactly which ``graph build`` command creates one), and
``compare`` needs ``--recall-target`` (it builds an in-memory graph
and prints a measured-recall NOTE instead of a disagreement WARNING).

Examples
--------
::

    python -m repro run --dataset kegg -k 20
    python -m repro run --n 5000 --dim 32 -k 10 --method ti-gpu
    python -m repro index build --n 5000 --dim 16 --out idx/
    python -m repro index inspect idx/
    python -m repro index update idx/ --add 100 --remove 3,17
    python -m repro run --index-dir idx/ --n 500 --dim 16 -k 10
    python -m repro graph build --index-dir idx/ -k 10
    python -m repro graph inspect idx/
    python -m repro run --index-dir idx/ --method graph-bfs \
        --recall-target 0.9 -k 10 --check
    python -m repro compare --n 800 -k 10 --recall-target 0.9 \
        --methods brute,graph-bfs
    python -m repro serve-bench --index-dir idx/ --requests 200 -k 10
    python -m repro serve-bench --index-dir idx/ --requests 200 -k 10 \
        --recall-target 0.9 --check
    python -m repro run --n 800 --dim 8 --method self-join-eps --eps 1.5
    python -m repro run --n 800 --method rknn -k 10 --check
    python -m repro classify --n 2000 --dim 16 -k 10
    python -m repro novelty --n 2000 --dim 16 -k 10 --outliers 25
    python -m repro compare --dataset skin -k 20
    python -m repro compare --n 800 -k 10 --methods brute,ti-cpu,sweet
    python -m repro compare --n 600 --eps 1.5 \
        --methods range-join-brute,range-join
    python -m repro adaptive --n 100 --dim 10000 -k 20
    python -m repro plan --dataset kegg -k 20 --method sweet
    python -m repro serve-bench --requests 200 --rate 500 -k 10
    python -m repro trace run --n 2000 --dim 16 -k 10 --method sweet
    python -m repro trace --check-funnel compare --n 800 -k 10
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from . import knn_join
from .bench.reporting import format_table
from .core.adaptive import decide
from .core.ti_knn import prepare_clusters
from .datasets import DATASETS, load, names
from .datasets.synthetic import gaussian_mixture
from .engine import engine_names, get_engine
from .engine.planner import plan as plan_join
from .gpu.device import tesla_k20c

__all__ = ["main", "build_parser"]


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sweet KNN (ICDE 2017) reproduction on a simulated "
                    "Tesla K20c")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one KNN join")
    _data_args(run)
    _method_arg(run)
    _eps_arg(run)
    _recall_arg(run)
    _workers_arg(run)
    run.add_argument("--query-batch-size", type=int, default=None,
                     help="force the dispatcher's query-tile size")
    run.add_argument("--index-dir", default=None, metavar="DIR",
                     help="query against a saved index (mmap-loaded) "
                          "instead of building one")
    run.add_argument("--check", action="store_true",
                     help="also run brute force and verify exactness")

    index = sub.add_parser(
        "index", help="build / inspect / update a saved index")
    index_sub = index.add_subparsers(dest="index_command", required=True)
    build = index_sub.add_parser(
        "build", help="cluster a target set and save it to a directory")
    _data_args(build)
    build.add_argument("--out", required=True, metavar="DIR",
                       help="index output directory")
    build.add_argument("--mt", type=int, default=None,
                       help="target landmark-count override")
    inspect = index_sub.add_parser(
        "inspect", help="print a saved index's manifest summary")
    inspect.add_argument("dir", metavar="DIR",
                         help="index directory to inspect")
    update = index_sub.add_parser(
        "update", help="apply incremental add/remove updates in place")
    update.add_argument("dir", metavar="DIR",
                        help="index directory to update")
    update.add_argument("--add", type=int, default=0, metavar="N",
                        help="insert N synthetic points drawn near "
                             "existing targets")
    update.add_argument("--remove", default=None, metavar="I,J,...",
                        help="comma-separated row ids to tombstone")
    update.add_argument("--seed", type=int, default=0,
                        help="seed for the synthetic added points")

    graph = sub.add_parser(
        "graph", help="build / inspect the approximate k-NN graph tier")
    graph_sub = graph.add_subparsers(dest="graph_command", required=True)
    gbuild = graph_sub.add_parser(
        "build", help="NN-descent graph over a saved index's live rows")
    gbuild.add_argument("--index-dir", required=True, metavar="DIR",
                        help="saved index to cover (the artifact lands "
                             "in DIR/graph)")
    gbuild.add_argument("--graph-k", type=int, default=16,
                        help="out-degree of every graph node")
    gbuild.add_argument("--sample", type=int, default=256,
                        help="nodes bootstrapped with exact TI "
                             "neighbours")
    gbuild.add_argument("--max-iters", type=int, default=12,
                        help="NN-descent iteration cap")
    gbuild.add_argument("--seed", type=int, default=None,
                        help="build seed (default: the index's seed)")
    gbuild.add_argument("-k", type=int, default=10,
                        help="k the recall curve is calibrated at")
    gbuild.add_argument("--n-probe", type=int, default=64,
                        help="held-out probes behind the recall curve")
    gbuild.add_argument("--no-calibrate", action="store_true",
                        help="skip the recall calibration pass")
    ginspect = graph_sub.add_parser(
        "inspect", help="print a saved graph's manifest summary")
    ginspect.add_argument("dir", metavar="DIR",
                          help="graph directory, or an index directory "
                               "holding one")

    compare = sub.add_parser("compare",
                             help="baseline vs KNN-TI vs Sweet KNN")
    _data_args(compare)
    _eps_arg(compare)
    _recall_arg(compare)
    _workers_arg(compare)
    compare.add_argument(
        "--methods", type=_methods_list, default=["cublas", "ti-gpu",
                                                  "sweet"],
        metavar="M1,M2,...",
        help="comma-separated registered engines; the first is the "
             "speedup baseline (default: cublas,ti-gpu,sweet)")

    sub.add_parser("datasets", help="list the Table III stand-ins")

    serve = sub.add_parser(
        "serve-bench",
        help="open-loop load generation against the KNN server")
    _data_args(serve)
    _method_arg(serve)
    _recall_arg(serve)
    serve.add_argument("--recall-every", type=int, default=2,
                       help="with --recall-target, every Nth request "
                            "carries the target (the rest stay exact)")
    _workers_arg(serve)
    serve.add_argument("--requests", type=int, default=200,
                       help="number of single-point requests")
    serve.add_argument("--rate", type=float, default=None,
                       help="arrival rate in requests/s (default: "
                            "maximum offered load)")
    serve.add_argument("--max-batch", type=int, default=32,
                       help="micro-batch coalescing cap in query rows")
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="longest a request waits for co-batching")
    serve.add_argument("--queue-depth", type=int, default=256,
                       help="admission-control queue bound")
    serve.add_argument("--deadline-ms", type=float, default=None,
                       help="per-request deadline")
    serve.add_argument("--degraded-method", default="brute",
                       help="fallback engine under overload "
                            "('none' disables degradation)")
    serve.add_argument("--index-dir", default=None, metavar="DIR",
                       help="preload a saved index into the server's "
                            "store (memory-mapped warm start)")
    serve.add_argument("--check", action="store_true",
                       help="verify served answers against a direct "
                            "knn_join of the same queries")
    serve.add_argument("--slo", action="append", default=[],
                       metavar="NAME=BOUND",
                       help="attach an SLO monitor (repeatable), e.g. "
                            "--slo p99_latency_s=0.25 "
                            "--slo rejection_rate=0.01; any breach "
                            "makes the exit code nonzero")

    adaptive = sub.add_parser(
        "adaptive", help="show the Fig. 8 decisions for a problem shape")
    _data_args(adaptive)

    plan = sub.add_parser(
        "plan", help="show the execution plan for a problem shape")
    _data_args(plan)
    _method_arg(plan)
    _eps_arg(plan)
    _workers_arg(plan)

    classify = sub.add_parser(
        "classify", help="majority-vote KNN classification workload")
    _data_args(classify)
    _method_arg(classify)
    _workers_arg(classify)
    classify.add_argument("--classes", type=int, default=4,
                          help="label count of the synthetic mixture")
    classify.add_argument("--train-frac", type=float, default=0.7,
                          help="fraction of points used as the "
                               "labelled reference set")

    novelty = sub.add_parser(
        "novelty", help="average-distance novelty-scoring workload")
    _data_args(novelty)
    _method_arg(novelty)
    _workers_arg(novelty)
    novelty.add_argument("--outliers", type=int, default=20,
                         help="far-away outlier points to inject")

    explain = sub.add_parser(
        "explain", help="run one join with explain=True and print the "
                        "query audit")
    _data_args(explain)
    _method_arg(explain)
    _eps_arg(explain)
    _workers_arg(explain)
    explain.add_argument("--json", default=None, metavar="FILE",
                         help="append the audit as a JSONL record")

    gate = sub.add_parser(
        "bench-gate",
        help="gate fresh BENCH_*.json payloads against the stored "
             "benchmark trajectory")
    gate.add_argument("--results-dir", default=None, metavar="DIR",
                      help="directory holding BENCH_*.json and the "
                           "trajectory (default: benchmarks/results)")
    gate.add_argument("--trajectory", default=None, metavar="FILE",
                      help="trajectory JSONL file (default: "
                           "TRAJECTORY.jsonl in the results dir)")
    gate.add_argument("--candidate", action="append", default=[],
                      metavar="FILE",
                      help="candidate payload file(s) to gate "
                           "(default: every BENCH_*.json in the "
                           "results dir)")
    gate.add_argument("--ingest", action="store_true",
                      help="append the candidates to the trajectory "
                           "instead of gating (baseline seeding)")
    gate.add_argument("--rel-tol", type=float, default=0.5,
                      help="relative drift from the history median "
                           "tolerated before a value counts as worse "
                           "(default 0.5 = 50%%)")
    gate.add_argument("--abs-floor", type=float, default=0.05,
                      help="minimum absolute delta for a regression "
                           "(default 0.05)")
    gate.add_argument("--all", action="store_true", dest="show_all",
                      help="print every gated metric, not only "
                           "regressions")

    sched_cmd = sub.add_parser(
        "sched", help="cost-model scheduler: calibrate / inspect the "
                      "artifact behind --method auto")
    sched_sub = sched_cmd.add_subparsers(dest="sched_command",
                                         required=True)
    calibrate = sched_sub.add_parser(
        "calibrate", help="fit the per-engine cost model from the "
                          "benchmark trajectory")
    calibrate.add_argument("--trajectory", default=None, metavar="FILE",
                           help="trajectory JSONL to replay (default: "
                                "benchmarks/results/TRAJECTORY.jsonl)")
    calibrate.add_argument("--out", default=None, metavar="FILE",
                           help="artifact output path (default: "
                                "benchmarks/results/cost_model.json)")
    calibrate.add_argument("--probes", action="store_true",
                           help="also time small probe joins on this "
                                "machine (non-deterministic artifact)")
    sinspect = sched_sub.add_parser(
        "inspect", help="print a cost-model artifact and its "
                        "per-dataset engine predictions")
    sinspect.add_argument("path", nargs="?", default=None, metavar="FILE",
                          help="artifact to inspect (default: "
                               "benchmarks/results/cost_model.json)")

    obs_cmd = sub.add_parser(
        "obs", help="observability reports over exported telemetry")
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    report = obs_sub.add_parser(
        "report", help="render a JSONL event log (trace --events-out) "
                       "as span/funnel/serve tables")
    report.add_argument("--events", required=True, metavar="FILE",
                        help="JSONL event log to read")
    report.add_argument("--slo", action="append", default=[],
                        metavar="NAME=BOUND",
                        help="also evaluate SLOs against the log's "
                             "final metrics snapshot (repeatable); "
                             "breaches set a nonzero exit code")

    trace = sub.add_parser(
        "trace", help="run another command with tracing enabled")
    trace.add_argument("--trace-out", default="trace.json",
                       metavar="FILE",
                       help="Chrome trace-event JSON output "
                            "(Perfetto-loadable; default: trace.json)")
    trace.add_argument("--events-out", default=None, metavar="FILE",
                       help="also write a JSONL span/event/metrics log")
    trace.add_argument("--check-funnel", action="store_true",
                       help="exit non-zero when the filtering-funnel "
                            "invariant is violated")
    trace.add_argument("argv", nargs=argparse.REMAINDER,
                       metavar="command ...",
                       help="the repro command to run under the tracer")

    return parser


def _method_arg(parser):
    parser.add_argument("--method", default="sweet",
                        choices=["auto"] + list(engine_names()),
                        help="a registered engine, or 'auto' to let the "
                             "cost-model scheduler pick the cheapest "
                             "predicted exact engine")


def _availability_note(method):
    """The missing-requirement one-liner for a method, or None."""
    from .engine import missing_requirements

    missing = missing_requirements(get_engine(method))
    if not missing:
        return None
    note = "method %r requires %s, which is not installed" % (
        method, ", ".join(missing))
    if "numba" in missing:
        from .native.support import NUMBA_INSTALL_HINT

        note += " — %s" % (NUMBA_INSTALL_HINT
                           % method.replace("-native", "-flat"))
    return note


def _check_method_available(method, out):
    """Fail fast (exit 2) when an optional engine dependency is absent.

    The ``*-native`` engines declare ``requires=("numba",)``; selecting
    one on an install without numba prints the one-line remedy instead
    of an ImportError traceback.
    """
    note = _availability_note(method)
    if note is not None:
        out.write("%s\n" % note)
        return 2
    return 0


def _resolve_auto(args, out):
    """Resolve ``--method auto`` to a concrete engine via the scheduler.

    The decision is made from the same shape the command is about to
    load (registry datasets carry their real clusterability proxy), so
    the printed choice is exactly what the run will execute.  The
    scheduler only considers available engines, so no availability
    re-check is needed afterwards.
    """
    if getattr(args, "method", None) != "auto":
        return 0
    from . import sched

    if args.dataset:
        spec = DATASETS[args.dataset]
        n, dim = spec.n, spec.dim
        clusterability = sched.dataset_clusterability(args.dataset)
    else:
        n, dim = args.n, args.dim
        clusterability = None
    decision = sched.decide(n, n, args.k, dim, method="auto",
                            clusterability=clusterability,
                            workers=getattr(args, "workers", None),
                            pool=getattr(args, "pool", None))
    args.method = decision.engine
    out.write("auto -> %s (%s; predicted %.4gs)\n"
              % (decision.engine, decision.reason, decision.predicted_s))
    return 0


def _eps_arg(parser):
    parser.add_argument("--eps", type=float, default=None,
                        help="range radius for the ε-range join engines "
                             "(required by methods declaring the knob)")


def _range_options(method, eps, out):
    """Resolve a range engine's option dict from the CLI knobs.

    Returns ``(options, error_code)``; prints the clear what-to-pass
    message (driven by the engine's ``required_options``) when a
    predicate-specific knob is missing or extraneous.
    """
    spec = get_engine(method)
    options = {}
    if "eps" in spec.required_options:
        if eps is None:
            out.write(
                "method %r needs --eps (the range predicate's radius); "
                "e.g. --eps 1.5\n" % method)
            return None, 2
        options["eps"] = eps
    elif eps is not None:
        needs = [name for name in engine_names()
                 if "eps" in get_engine(name).required_options]
        out.write("--eps only applies to %s (not %r)\n"
                  % (", ".join(needs), method))
        return None, 2
    return options, 0


def _recall_arg(parser):
    parser.add_argument("--recall-target", type=float, default=None,
                        metavar="R",
                        help="answer via the approximate graph tier at "
                             "the ef calibrated for recall@k >= R "
                             "(needs a graph artifact; see "
                             "`graph build`)")


def _graph_build_hint(index_dir):
    return ("build one with `python -m repro graph build "
            "--index-dir %s`\n" % index_dir)


def _check_recall_target(args, out):
    if args.recall_target is not None \
            and not 0.0 < args.recall_target <= 1.0:
        out.write("--recall-target must be in (0, 1]\n")
        return 2
    return 0


def _graph_options(method, args, out):
    """Resolve a graph engine's option dict from the CLI knobs.

    The approximate engines declare ``graph`` in ``required_options``;
    like :func:`_range_options` this fails fast with exactly what to
    pass when the artifact behind the knob is missing or stale.
    Returns ``(options, index, error_code)``.
    """
    from .index import Index

    if not args.index_dir:
        out.write("method %r answers from a saved index's graph "
                  "artifact; pass --index-dir DIR and " % method
                  + _graph_build_hint("DIR"))
        return None, None, 2
    index = Index.load(args.index_dir)
    graph = index.graph
    if graph is None:
        out.write("index %s has no graph artifact; " % args.index_dir
                  + _graph_build_hint(args.index_dir))
        return None, None, 2
    if not graph.is_fresh_for(index):
        out.write("the graph artifact in %s is stale (built at version "
                  "%d, index now at %d, policy allows lag %d); "
                  % (args.index_dir, graph.built_version, index.version,
                     graph.config.max_version_lag)
                  + _graph_build_hint(args.index_dir))
        return None, None, 2
    ef = (graph.ef_for(args.recall_target, args.k)
          if args.recall_target is not None
          else graph.default_ef(args.k))
    options = {"graph": graph, "ef": ef}
    if index.n_tombstones:
        options["dead_mask"] = index.tombstones
    return options, index, 0


def _workers_arg(parser):
    parser.add_argument("--workers", type=int, default=None,
                        help="shard query tiles across this many worker "
                             "processes (0 = one per core; default: "
                             "REPRO_WORKERS or serial)")
    parser.add_argument("--pool", default=None,
                        choices=["process", "thread", "serial"],
                        help="worker-pool kind (default: REPRO_POOL or "
                             "process)")


def _methods_list(text):
    """argparse type for ``--methods``: comma list, registry-validated."""
    methods = [name.strip() for name in text.split(",") if name.strip()]
    if not methods:
        raise argparse.ArgumentTypeError("at least one method is required")
    unknown = [name for name in methods if name not in engine_names()]
    if unknown:
        raise argparse.ArgumentTypeError(
            "unknown method(s) %s; registered engines: %s"
            % (", ".join(unknown), ", ".join(engine_names())))
    return methods


def _data_args(parser):
    parser.add_argument("--dataset", choices=names(),
                        help="a Table III stand-in")
    parser.add_argument("--n", type=int, default=2000,
                        help="points for a synthetic mixture (no --dataset)")
    parser.add_argument("--dim", type=int, default=16,
                        help="dimensions for a synthetic mixture")
    parser.add_argument("-k", type=int, default=20,
                        help="neighbours per query")
    parser.add_argument("--seed", type=int, default=0,
                        help="landmark-selection seed")


def _load_points(args):
    if args.dataset:
        points, spec = load(args.dataset)
        return points, spec.device(), args.dataset
    rng = np.random.default_rng(args.seed)
    points = gaussian_mixture(args.n, args.dim, rng,
                              n_clusters=max(4, args.n // 100),
                              intrinsic_dim=min(args.dim, 8))
    return points, tesla_k20c(), "synthetic(n=%d,d=%d)" % (args.n, args.dim)


def _profile_row(label, result, baseline=None):
    speedup = None
    if (baseline is not None and baseline.sim_time_s is not None
            and result.sim_time_s):
        speedup = baseline.sim_time_s / result.sim_time_s
    return [label,
            result.sim_time_s * 1e3 if result.sim_time_s is not None
            else None,
            100 * result.stats.saved_fraction,
            100 * result.profile.filter_warp_efficiency()
            if result.profile else None,
            speedup]


def cmd_run(args, out):
    code = _resolve_auto(args, out)
    if code:
        return code
    spec = get_engine(args.method)
    code = _check_method_available(args.method, out)
    if code:
        return code
    range_kind = spec.caps.result_kind == "range"
    approximate = spec.caps.approximate
    code = _check_recall_target(args, out)
    if code:
        return code
    options, code = _range_options(args.method, args.eps, out)
    if code:
        return code
    if args.recall_target is not None and not approximate:
        needs = [name for name in engine_names()
                 if get_engine(name).caps.approximate]
        out.write("--recall-target only applies to %s (not %r)\n"
                  % (", ".join(needs), args.method))
        return 2
    index = None
    if approximate:
        graph_options, index, code = _graph_options(args.method, args,
                                                    out)
        if code:
            return code
        options.update(graph_options)
        if not args.dataset:
            args.dim = index.dim
    elif args.index_dir:
        if range_kind:
            out.write("the range/rknn methods answer from their own "
                      "prepared plan; --index-dir is not supported for "
                      "%r\n" % args.method)
            return 2
        from .core.api import SweetKNN
        from .index import Index

        index = Index.load(args.index_dir)
        if not args.dataset:
            # Synthetic queries must live in the index's space, not the
            # --dim default.
            args.dim = index.dim
    points, device, name = _load_points(args)
    if approximate:
        result = knn_join(points, np.asarray(index.targets), args.k,
                          method=args.method, seed=args.seed,
                          query_batch_size=args.query_batch_size,
                          workers=args.workers, pool=args.pool,
                          **options)
        name = "%s -> graph in %s" % (name, args.index_dir)
    elif args.index_dir:
        knn = SweetKNN.from_index(
            index, method=args.method,
            device=device if spec.caps.needs_device else None,
            workers=args.workers, pool=args.pool)
        result = knn.query(points, args.k,
                           query_batch_size=args.query_batch_size)
        name = "%s -> index %s" % (name, args.index_dir)
    else:
        result = knn_join(points, points, args.k, method=args.method,
                          seed=args.seed,
                          device=device if spec.caps.needs_device else None,
                          query_batch_size=args.query_batch_size,
                          workers=args.workers, pool=args.pool, **options)
    out.write("%s on %s: k=%d\n" % (result.method, name, args.k))
    if approximate:
        out.write("approximate graph route: ef=%d, recall target %s\n"
                  % (options["ef"],
                     "%.2f" % args.recall_target
                     if args.recall_target is not None else "none"))
    if result.sim_time_s is not None:
        out.write("simulated K20c time: %.3f ms\n"
                  % (result.sim_time_s * 1e3))
    out.write("distance computations: %d (saved %.2f%%)\n" % (
        result.stats.level2_distance_computations,
        100 * result.stats.saved_fraction))
    if range_kind:
        counts = result.counts()
        out.write("accepted pairs: %d (per query min/mean/max "
                  "%d/%.1f/%d)\n"
                  % (result.n_pairs, counts.min(), counts.mean(),
                     counts.max()))
    if result.stats.extra:
        out.write("decisions: %s\n" % (result.stats.extra,))
    if args.check:
        if approximate:
            from .graph.recall import measured_recall

            active = index.active_ids()
            oracle = knn_join(points, index.targets[active], args.k,
                              method="brute")
            recall = measured_recall(result.indices,
                                     active[oracle.indices])
            out.write("measured recall@%d vs brute force: %.4f\n"
                      % (args.k, recall))
            if args.recall_target is not None \
                    and recall < args.recall_target:
                out.write("recall is below the requested target %.2f\n"
                          % args.recall_target)
                return 1
            return 0
        if range_kind:
            from .baselines.brute_joins import (brute_range_join,
                                                brute_reverse_knn)
            if args.method == "self-join-eps":
                oracle = brute_range_join(points, points, args.eps,
                                          skip_self=True)
            elif "eps" in spec.required_options:
                oracle = brute_range_join(points, points, args.eps)
            else:
                oracle = brute_reverse_knn(points, points, args.k)
            exact = result.matches(oracle)
        elif index is not None:
            active = index.active_ids()
            oracle = knn_join(points, index.targets[active], args.k,
                              method="brute")
            exact = bool(
                np.allclose(result.distances, oracle.distances,
                            rtol=0, atol=1e-9)
                and all(np.array_equal(np.sort(active[oracle.indices[i]]),
                                       np.sort(result.indices[i]))
                        for i in range(len(points))))
        else:
            oracle = knn_join(points, points, args.k, method="brute")
            exact = result.matches(oracle)
        out.write("exact vs brute force: %s\n" % exact)
        if not exact:
            return 1
    return 0


def cmd_index(args, out):
    from .index import Index, read_manifest

    if args.index_command == "build":
        points, device, name = _load_points(args)
        index = Index(points, seed=args.seed, mt=args.mt,
                      memory_budget_bytes=device.global_mem_bytes)
        path = index.save(args.out)
        out.write("built index for %s: n=%d dim=%d mt=%d\n"
                  % (name, index.n_points, index.dim, index.mt))
        out.write("fingerprint %s version %d -> %s\n"
                  % (index.fingerprint[:12], index.version, path))
        return 0

    if args.index_command == "inspect":
        manifest = read_manifest(args.dir)
        rows = [[key, manifest.get(key)] for key in (
            "format_version", "fingerprint", "version", "build_count",
            "n", "dim", "mt", "seed", "mt_requested", "n_tombstones",
            "max_cluster_size_at_build")]
        rows.append(["policy", manifest.get("policy")])
        rows.append(["arrays", ", ".join(sorted(manifest["arrays"]))])
        out.write(format_table("index %s" % args.dir,
                               ["field", "value"], rows))
        return 0

    # update
    index = Index.load(args.dir)
    before = (index.version, index.build_count)
    rng = np.random.default_rng(args.seed)
    if args.add:
        base = index.targets[rng.integers(0, index.n_points,
                                          size=args.add)]
        noise = rng.normal(scale=0.05, size=(args.add, index.dim))
        added = index.add(base + noise)
        out.write("added %d points (ids %d..%d)\n"
                  % (len(added), added[0], added[-1]))
    if args.remove:
        ids = [int(part) for part in args.remove.split(",") if part.strip()]
        index.remove(ids)
        out.write("removed %d points\n" % len(ids))
    if (index.version, index.build_count) == before:
        out.write("no updates requested; index unchanged\n")
        return 0
    index.save(args.dir)
    out.write("version %d -> %d (build_count %d, tombstones %d, "
              "active %d)\n"
              % (before[0], index.version, index.build_count,
                 index.n_tombstones, index.n_active))
    return 0


def cmd_graph(args, out):
    from .graph import storage as graph_storage

    if args.graph_command == "build":
        from .graph import GraphConfig
        from .index import Index

        index = Index.load(args.index_dir)
        config = GraphConfig(graph_k=args.graph_k, sample=args.sample,
                             max_iters=args.max_iters)
        graph = index.build_graph(config=config, seed=args.seed,
                                  calibrate=not args.no_calibrate,
                                  k=args.k, n_probe=args.n_probe)
        path = graph.save(os.path.join(args.index_dir, "graph"))
        out.write("built graph for index %s: %d nodes, graph_k=%d, "
                  "dim=%d, %d entry points\n"
                  % (args.index_dir, graph.n_nodes, graph.graph_k,
                     graph.dim, graph.entry_points.size))
        out.write("%d NN-descent iterations (updates %s), %d exact "
                  "bootstrap rows, %d build distances\n"
                  % (graph.n_iterations,
                     ",".join(str(u) for u in graph.iteration_updates),
                     graph.bootstrap_rows,
                     graph.build_distance_computations))
        if graph.calibration is not None:
            out.write("recall@%d curve: %s\n"
                      % (graph.calibration.k,
                         "  ".join("ef=%d:%.3f" % entry for entry
                                   in graph.calibration.entries)))
        out.write("fingerprint %s version %d -> %s\n"
                  % (graph.fingerprint[:12], graph.built_version, path))
        return 0

    # inspect: accept the graph directory itself or the index
    # directory holding one.
    path = args.dir
    if not graph_storage.is_graph_dir(path):
        nested = os.path.join(path, "graph")
        if not graph_storage.is_graph_dir(nested):
            out.write("%s holds no graph artifact; " % path
                      + _graph_build_hint(path))
            return 2
        path = nested
    manifest = graph_storage.read_graph_manifest(path)
    rows = [[key, manifest.get(key)] for key in (
        "format_version", "fingerprint", "seed", "built_version", "dim",
        "n_nodes", "graph_k", "n_targets_at_build", "bootstrap_rows",
        "build_distance_computations")]
    updates = manifest.get("iteration_updates", [])
    rows.append(["iterations", len(updates)])
    rows.append(["iteration_updates",
                 ",".join(str(u) for u in updates)])
    rows.append(["config", manifest.get("config")])
    calibration = manifest.get("calibration")
    rows.append(["recall curve",
                 "  ".join("ef=%d:%.3f" % (ef, recall)
                           for ef, recall in calibration["entries"])
                 if calibration else None])
    rows.append(["arrays", ", ".join(sorted(manifest["arrays"]))])
    out.write(format_table("graph %s" % path, ["field", "value"], rows))
    return 0


#: Human-readable row labels for the classic three-way comparison.
_COMPARE_LABELS = {"cublas": "cublas baseline", "ti-gpu": "basic KNN-TI",
                   "sweet": "Sweet KNN"}


def cmd_compare(args, out):
    code = _check_recall_target(args, out)
    if code:
        return code
    points, device, name = _load_points(args)
    graph_index = None
    baseline = None
    rows = []
    for method in args.methods:
        spec = get_engine(method)
        note = _availability_note(method)
        if note is not None:
            if method == args.methods[0]:
                # The first method anchors the speedup column; without
                # it the comparison is meaningless.
                out.write("%s\n" % note)
                return 2
            out.write("SKIPPED: %s\n" % note)
            continue
        options, code = _range_options(method, args.eps, out) \
            if spec.required_options else ({}, 0)
        if code:
            return code
        if spec.caps.approximate:
            if args.recall_target is None:
                out.write("method %r needs --recall-target (the "
                          "approximate tier's accuracy knob); e.g. "
                          "--recall-target 0.9\n" % method)
                return 2
            if graph_index is None:
                from .index import Index

                graph_index = Index(
                    points, seed=args.seed,
                    memory_budget_bytes=device.global_mem_bytes)
                graph_index.build_graph(k=args.k)
                curve = graph_index.graph.calibration
                out.write("in-memory graph: %d nodes, graph_k=%d; "
                          "recall@%d curve %s\n"
                          % (graph_index.graph.n_nodes,
                             graph_index.graph.graph_k, curve.k,
                             "  ".join("ef=%d:%.3f" % entry
                                       for entry in curve.entries)))
            options["graph"] = graph_index.graph
            options["ef"] = graph_index.graph.ef_for(args.recall_target,
                                                     args.k)
        result = knn_join(points, points, args.k, method=method,
                          seed=args.seed,
                          device=device if spec.caps.needs_device else None,
                          workers=args.workers, pool=args.pool, **options)
        label = _COMPARE_LABELS.get(method, method)
        if baseline is None:
            baseline = result
            label = _COMPARE_LABELS.get(method, "%s baseline" % method)
        elif type(result) is not type(baseline):
            out.write("NOTE: %s returns %s rows; not comparable with the "
                      "baseline's %s\n"
                      % (label, type(result).__name__,
                         type(baseline).__name__))
        elif spec.caps.approximate:
            from .graph.recall import measured_recall

            out.write("NOTE: %s is approximate (ef=%d): measured "
                      "recall@%d vs the baseline = %.3f\n"
                      % (label, options["ef"], args.k,
                         measured_recall(result.indices,
                                         baseline.indices)))
        elif not result.matches(baseline):
            out.write("WARNING: %s disagrees with the baseline\n" % label)
        rows.append(_profile_row(label, result, baseline))
    out.write(format_table(
        "%s: k=%d (simulated Tesla K20c)" % (name, args.k),
        ["engine", "sim ms", "saved %", "level-2 warp eff %",
         "speedup(x)"], rows))
    return 0


def cmd_datasets(args, out):
    rows = []
    for dataset in names():
        spec = DATASETS[dataset]
        device = spec.device()
        rows.append([dataset, "%dx%d" % (spec.paper_n, spec.paper_dim),
                     "%dx%d" % (spec.n, spec.dim),
                     "1/%.0f" % spec.scale,
                     "%.1f MB" % (device.global_mem_bytes / 1e6)])
    out.write(format_table(
        "Table III dataset stand-ins",
        ["name", "paper n x d", "stand-in n x d", "scale", "device mem"],
        rows))
    return 0


def cmd_adaptive(args, out):
    points, device, name = _load_points(args)
    rng = np.random.default_rng(args.seed)
    plan = prepare_clusters(points, points, rng,
                            memory_budget_bytes=device.global_mem_bytes)
    ct = plan.target_clusters
    config = decide(len(points), len(points), args.k, points.shape[1],
                    ct.n_points / max(1, ct.n_clusters), device)
    out.write("adaptive decisions for %s, k=%d:\n" % (name, args.k))
    out.write("  k/d = %.3f -> %s level-2 filtering\n"
              % (args.k / points.shape[1], config.filter_strength))
    out.write("  kNearests: %s\n" % config.placement.describe())
    out.write("  threads per query: %d (inner %d x outer %d)\n" % (
        config.parallel.threads_per_query, config.parallel.inner_factor,
        config.parallel.outer_factor))
    out.write("  landmarks: %d query / %d target clusters\n"
              % (plan.mq, plan.mt))
    return 0


def cmd_plan(args, out):
    code = _resolve_auto(args, out)
    if code:
        return code
    code = _check_method_available(args.method, out)
    if code:
        return code
    options, code = _range_options(args.method, args.eps, out)
    if code:
        return code
    points, device, name = _load_points(args)
    spec = get_engine(args.method)
    exec_plan = plan_join(points, points, args.k, method=args.method,
                          device=device if spec.caps.needs_device else None,
                          workers=args.workers, pool=args.pool)
    out.write("execution plan for %s (method=%s):\n" % (name, args.method))
    if spec.caps.requires:
        out.write("  %-16s %s (installed)\n"
                  % ("requires", ", ".join(spec.caps.requires)))
    if options:
        out.write("  %-16s %s\n" % ("knobs", options))
    for key, value in exec_plan.describe().items():
        out.write("  %-16s %s\n" % (key, value))
    return 0


def _labelled_mixture(n, dim, rng, n_classes):
    """A labelled Gaussian mixture: one blob per class."""
    centers = rng.normal(scale=4.0, size=(n_classes, dim))
    labels = rng.integers(0, n_classes, size=n)
    points = centers[labels] + rng.normal(size=(n, dim))
    return points, labels


def cmd_classify(args, out):
    from .workloads import knn_classify

    spec = get_engine(args.method)
    code = _check_method_available(args.method, out)
    if code:
        return code
    rng = np.random.default_rng(args.seed)
    points, labels = _labelled_mixture(args.n, args.dim, rng, args.classes)
    if not 0.0 < args.train_frac < 1.0:
        out.write("--train-frac must be in (0, 1)\n")
        return 2
    split = int(args.n * args.train_frac)
    if split < args.k or split >= args.n:
        out.write("train split of %d rows cannot serve k=%d "
                  "(raise --n or lower --train-frac/-k)\n"
                  % (split, args.k))
        return 2
    prediction = knn_classify(
        points[split:], points[:split], labels[:split], args.k,
        method=args.method, seed=args.seed,
        device=tesla_k20c() if spec.caps.needs_device else None,
        workers=args.workers, pool=args.pool)
    accuracy = prediction.accuracy(labels[split:])
    stats = prediction.result.stats
    out.write("knn-classify via %s: %d train / %d test, %d classes, "
              "k=%d\n" % (prediction.result.method, split, args.n - split,
                          args.classes, args.k))
    out.write("held-out accuracy: %.4f\n" % accuracy)
    out.write("distance computations: %d (saved %.2f%%)\n"
              % (stats.level2_distance_computations,
                 100 * stats.saved_fraction))
    return 0


def cmd_novelty(args, out):
    from .workloads import novelty_scores

    spec = get_engine(args.method)
    code = _check_method_available(args.method, out)
    if code:
        return code
    rng = np.random.default_rng(args.seed)
    points = gaussian_mixture(args.n, args.dim, rng,
                              n_clusters=max(4, args.n // 100),
                              intrinsic_dim=min(args.dim, 8))
    if args.outliers <= 0:
        out.write("--outliers must be positive\n")
        return 2
    # Inliers: a held-out resample of the mixture; outliers: points far
    # outside the blobs' span.
    sample = points[rng.integers(0, args.n, size=args.outliers)] \
        + rng.normal(scale=0.05, size=(args.outliers, args.dim))
    span = float(np.abs(points).max())
    outliers = rng.normal(scale=span * 3.0,
                          size=(args.outliers, args.dim)) \
        + np.sign(rng.normal(size=(args.outliers, args.dim))) * span * 3.0
    queries = np.vstack([sample, outliers])
    scored = novelty_scores(queries, points, args.k, method=args.method,
                            seed=args.seed,
                            device=(tesla_k20c()
                                    if spec.caps.needs_device else None),
                            workers=args.workers, pool=args.pool)
    inlier = scored.scores[:args.outliers]
    outlier = scored.scores[args.outliers:]
    separated = int(np.sum(outlier > inlier.max()))
    out.write("novelty via %s: %d inliers / %d outliers, k=%d\n"
              % (scored.result.method, args.outliers, args.outliers,
                 args.k))
    out.write("mean score: inliers %.4f, outliers %.4f\n"
              % (float(inlier.mean()), float(outlier.mean())))
    out.write("outliers above every inlier score: %d/%d\n"
              % (separated, args.outliers))
    return 0 if separated == args.outliers else 1


def cmd_serve_bench(args, out):
    from .errors import ValidationError
    from .obs import current_tracer
    from .obs.watch import SloSpec
    from .serve import KNNServer, run_open_loop

    code = _check_recall_target(args, out)
    if code:
        return code
    for method in (args.method, args.degraded_method):
        if method in (None, "none", ""):
            continue
        code = _check_method_available(method, out)
        if code:
            return code
    try:
        slos = tuple(SloSpec.parse(text) for text in args.slo)
    except ValidationError as exc:
        out.write("%s\n" % exc)
        return 2
    if args.recall_target is not None:
        from .graph.storage import is_graph_dir

        if not args.index_dir:
            out.write("recall-targeted serving answers from a saved "
                      "index's graph artifact; pass --index-dir DIR "
                      "and " + _graph_build_hint("DIR"))
            return 2
        if not is_graph_dir(os.path.join(args.index_dir, "graph")):
            out.write("index %s has no graph artifact; " % args.index_dir
                      + _graph_build_hint(args.index_dir))
            return 2
    points, device, name = _load_points(args)
    rng = np.random.default_rng(args.seed + 1)
    queries = points[rng.integers(0, len(points), size=args.requests)] \
        + rng.normal(scale=0.05, size=(args.requests, points.shape[1]))

    degraded = (None if args.degraded_method in (None, "none", "")
                else args.degraded_method)
    server = KNNServer(
        method=args.method, degraded_method=degraded,
        max_batch_size=args.max_batch,
        max_wait_s=args.max_wait_ms / 1e3,
        max_queue_depth=args.queue_depth,
        default_deadline_s=(args.deadline_ms / 1e3
                            if args.deadline_ms is not None else None),
        seed=args.seed, device=device, workers=args.workers,
        pool=args.pool, index_dir=args.index_dir,
        tracer=current_tracer(), slos=slos)
    deadline_note = ("%.0f ms" % args.deadline_ms
                     if args.deadline_ms is not None else "none")
    out.write("serve-bench: %d single-point requests on %s, k=%d, "
              "method=%s\n" % (args.requests, name, args.k, args.method))
    out.write("open loop at %s; batch<=%d, wait<=%.1f ms, queue<=%d, "
              "deadline %s\n"
              % ("%.0f req/s" % args.rate if args.rate else "max rate",
                 args.max_batch, args.max_wait_ms, args.queue_depth,
                 deadline_note))
    if args.recall_target is not None:
        out.write("recall mix: every %d. request targets recall@%d >= "
                  "%.2f (graph route)\n"
                  % (max(1, args.recall_every), args.k,
                     args.recall_target))
    with server:
        report = run_open_loop(server, points, queries, args.k,
                               rate=args.rate,
                               recall_target=args.recall_target,
                               recall_every=args.recall_every)
    out.write("%d served / %d rejected / %d expired / %d errors "
              "in %.2f s (%.0f served/s)\n"
              % (report.served, report.rejected, report.expired,
                 len(report.errors), report.wall_s, report.served_rate))
    out.write(report.stats.table(
        "serving stats: %s, %d requests" % (name, args.requests)))
    slo_code = 0
    if slos:
        breaches = [status for status in report.stats.slo if not status.ok]
        for status in breaches:
            out.write("SLO BREACH: %s (measured %.6g)\n"
                      % (status.spec.describe(), status.value))
        if breaches:
            slo_code = 1
        else:
            out.write("all %d SLO objective(s) hold\n" % len(slos))
    if args.check and report.responses:
        direct = knn_join(queries, points, args.k, method=args.method,
                          seed=args.seed,
                          device=device if get_engine(
                              args.method).caps.needs_device else None)
        # Responses served by the approximate graph route are checked
        # for measured recall (the EngineCaps.approximate contract);
        # exact-routed ones must still equal the direct join.
        exact_pairs = [(i, response) for i, response in report.responses
                       if getattr(response, "route", "exact") != "approx"]
        approx_pairs = [(i, response) for i, response in report.responses
                        if getattr(response, "route", "exact") == "approx"]
        exact = all(
            np.array_equal(np.sort(response.indices),
                           np.sort(direct.indices[i]))
            and np.allclose(response.distances, direct.distances[i],
                            rtol=0, atol=1e-9)
            for i, response in exact_pairs)
        out.write("exact-routed answers equal direct knn_join: %s "
                  "(%d requests)\n" % (exact, len(exact_pairs)))
        code = 0 if exact else 1
        if approx_pairs:
            from .graph.recall import measured_recall

            recall = measured_recall(
                np.asarray([response.indices
                            for _, response in approx_pairs]),
                direct.indices[[i for i, _ in approx_pairs]])
            out.write("approx-routed measured recall@%d: %.4f "
                      "(target %.2f, %d requests)\n"
                      % (args.k, recall, args.recall_target,
                         len(approx_pairs)))
            if recall < args.recall_target:
                code = 1
        return max(code, slo_code)
    return slo_code


def cmd_explain(args, out):
    code = _resolve_auto(args, out)
    if code:
        return code
    spec = get_engine(args.method)
    code = _check_method_available(args.method, out)
    if code:
        return code
    options, code = _range_options(args.method, args.eps, out)
    if code:
        return code
    points, device, name = _load_points(args)
    result = knn_join(points, points, args.k, method=args.method,
                      seed=args.seed,
                      device=device if spec.caps.needs_device else None,
                      workers=args.workers, pool=args.pool,
                      explain=True, **options)
    audit = result.audit
    out.write(audit.table("query audit: %s on %s" % (result.method, name)))
    if args.json:
        from .obs import write_jsonl

        write_jsonl(args.json, [audit.to_dict()])
        out.write("audit record -> %s\n" % args.json)
    return 0


def cmd_bench_gate(args, out):
    import json as json_module

    from .obs import baseline as baseline_module

    results_dir = args.results_dir or os.path.join("benchmarks", "results")
    trajectory = args.trajectory or os.path.join(
        results_dir, baseline_module.TRAJECTORY_NAME)
    candidates = list(args.candidate)
    if not candidates:
        if os.path.isdir(results_dir):
            candidates = sorted(
                os.path.join(results_dir, fname)
                for fname in os.listdir(results_dir)
                if fname.startswith("BENCH_") and fname.endswith(".json"))
        if not candidates:
            out.write("no BENCH_*.json payloads under %s; run a benchmark "
                      "or pass --candidate FILE\n" % results_dir)
            return 2
    records = []
    for path in candidates:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json_module.load(handle)
        records.extend(baseline_module.ingest_payload(
            baseline_module.bench_name(path), payload))

    if args.ingest:
        written = baseline_module.append_trajectory(trajectory, records)
        out.write("ingested %d/%d metric records from %d payload(s) "
                  "-> %s\n" % (len(written), len(records),
                               len(candidates), trajectory))
        return 0

    history = baseline_module.load_trajectory(trajectory)
    if not history:
        out.write("trajectory %s is empty; seed it first with "
                  "`python -m repro bench-gate --ingest`\n" % trajectory)
        return 2
    report = baseline_module.gate(records, history,
                                  rel_tol=args.rel_tol,
                                  abs_floor=args.abs_floor)
    out.write(report.table("bench-gate vs %s" % trajectory,
                           all_rows=args.show_all))
    if report.regressions:
        out.write("REGRESSION: %d metric(s) worse than the stored "
                  "baseline\n" % len(report.regressions))
        return 1
    out.write("gate passed: no regressions against %d stored record(s)\n"
              % len(history))
    return 0


def cmd_sched(args, out):
    from . import sched

    if args.sched_command == "calibrate":
        trajectory = args.trajectory or str(
            sched.default_trajectory_path())
        model = sched.calibrate(trajectory_path=trajectory,
                                probes=args.probes)
        path = args.out or str(sched.default_artifact_path())
        model.save(path)
        counts = model.source.get("samples_per_engine", {})
        out.write("cost model v%s: %d trajectory + %d probe sample(s) "
                  "across %d engine(s) -> %s\n"
                  % (model.version, model.source.get("n_trajectory", 0),
                     model.source.get("n_probe", 0), len(model.engines),
                     path))
        if counts:
            out.write(format_table(
                "calibrated engines",
                ["engine", "samples"],
                [[name, counts[name]] for name in sorted(counts)]))
        out.write("activate it with REPRO_SCHED_MODEL=%s or "
                  "repro.sched.set_model()\n" % path)
        return 0

    # inspect
    path = args.path or str(sched.default_artifact_path())
    if not os.path.exists(path):
        out.write("no cost-model artifact at %s; build one with "
                  "`python -m repro sched calibrate`\n" % path)
        return 2
    model = sched.CostModel.load(path)
    out.write("cost model v%s (created %s)\n"
              % (model.version, model.created))
    out.write("source: %s\n" % (model.source,))
    rows = [[name, engine.n_samples,
             "  ".join("%s=%.4g" % (fname, weight)
                       for fname, weight in zip(sched.FEATURE_NAMES,
                                                engine.weights))]
            for name, engine in sorted(model.engines.items())]
    if rows:
        out.write(format_table("fitted engine models",
                               ["engine", "samples", "weights"], rows))
    candidates = sched.default_candidates()
    for dataset in names():
        spec = DATASETS[dataset]
        features = sched.features_from_shape(
            spec.n, spec.n, 20, spec.dim,
            clusterability=sched.dataset_clusterability(dataset))
        costs = sched.predict_costs(candidates, features, model=model)
        out.write(format_table(
            "predicted self-join query_time_s: %s (%dx%d, k=20)"
            % (dataset, spec.n, spec.dim),
            ["engine", "predicted s", "choice"],
            [[name, "%.4g" % cost, "<-- cheapest" if i == 0 else ""]
             for i, (name, cost) in enumerate(costs)]))
    return 0


def cmd_obs(args, out):
    # Only `obs report` exists today; the subparser enforces that.
    import json as json_module

    from .obs.funnel import FUNNEL_STAGES, funnel_table
    from .obs.watch import SloSpec, SnapshotReader, evaluate_slos, slo_table

    try:
        specs = tuple(SloSpec.parse(text) for text in args.slo)
    except Exception as exc:
        out.write("%s\n" % exc)
        return 2
    if not os.path.exists(args.events):
        out.write("no event log at %s (produce one with `python -m repro "
                  "trace --events-out %s ...`)\n"
                  % (args.events, args.events))
        return 2
    spans, events, metrics = {}, 0, {}
    with open(args.events, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json_module.loads(line)
            kind = record.get("type")
            if kind == "span":
                entry = spans.setdefault(record.get("name"),
                                         {"count": 0, "total_s": 0.0})
                entry["count"] += 1
                entry["total_s"] += record.get("duration_s") or 0.0
            elif kind in ("instant", "event", "query_audit"):
                events += 1
            elif kind == "metrics":
                # Last snapshot wins: it holds the run's final totals.
                metrics = record.get("metrics", {})
    rows = [[name, entry["count"], round(entry["total_s"] * 1e3, 3)]
            for name, entry in sorted(spans.items(),
                                      key=lambda kv: -kv[1]["total_s"])]
    if rows:
        out.write(format_table("span timings: %s" % args.events,
                               ["span", "count", "total ms"], rows))
    counts = {stage: int(metrics.get("funnel." + stage, 0))
              for stage in FUNNEL_STAGES}
    if counts.get("candidates"):
        out.write(funnel_table(counts))
    serve_rows = [[name, value if not isinstance(value, dict)
                   else "n=%s p99=%.6g" % (value.get("count"),
                                           value.get("p99", float("nan")))]
                  for name, value in sorted(metrics.items())
                  if name.startswith(("serve.", "slo."))]
    if serve_rows:
        out.write(format_table("serving metrics",
                               ["metric", "value"], serve_rows))
    out.write("%d span record(s), %d event(s), %d metric(s)\n"
              % (sum(entry["count"] for entry in spans.values()),
                 events, len(metrics)))
    if specs:
        statuses = evaluate_slos(specs, SnapshotReader(metrics))
        out.write(slo_table(statuses))
        breaches = [status for status in statuses if not status.ok]
        for status in breaches:
            out.write("SLO BREACH: %s (measured %.6g)\n"
                      % (status.spec.describe(), status.value))
        if breaches:
            return 1
    return 0


def cmd_trace(args, out):
    from .obs.export import tracer_records, write_chrome_trace, write_jsonl
    from .obs.funnel import check_funnel, funnel_counts, funnel_table
    from .obs.tracer import Tracer, use_tracer

    argv = list(args.argv)
    if argv and argv[0] == "--":
        argv = argv[1:]
    if not argv or argv[0] == "trace":
        out.write("trace needs a command to run, e.g.: "
                  "repro trace run --n 2000 -k 10\n")
        return 2

    tracer = Tracer()
    with use_tracer(tracer):
        code = main(argv, out)

    write_chrome_trace(args.trace_out, tracer)
    if args.events_out:
        write_jsonl(args.events_out, tracer_records(tracer))
    counts = funnel_counts(tracer.registry)
    if counts["candidates"]:
        out.write(funnel_table(counts))
    out.write("%d spans -> %s%s\n"
              % (len(tracer.finished_spans()), args.trace_out,
                 (" (events: %s)" % args.events_out
                  if args.events_out else "")))
    if args.check_funnel:
        violations = check_funnel(counts)
        for violation in violations:
            out.write("FUNNEL VIOLATION: %s\n" % violation)
        if violations:
            return 1
        out.write("funnel invariant holds\n")
    return code


_COMMANDS = {"run": cmd_run, "compare": cmd_compare,
             "datasets": cmd_datasets, "adaptive": cmd_adaptive,
             "plan": cmd_plan, "serve-bench": cmd_serve_bench,
             "classify": cmd_classify, "novelty": cmd_novelty,
             "index": cmd_index, "graph": cmd_graph, "trace": cmd_trace,
             "explain": cmd_explain, "bench-gate": cmd_bench_gate,
             "obs": cmd_obs, "sched": cmd_sched}


def main(argv=None, out=None):
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out)


if __name__ == "__main__":
    sys.exit(main())
